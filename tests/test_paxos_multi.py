"""Unit tests for Multi-Paxos mastership ranges."""

from repro.paxos.ballot import Ballot, BallotRange, INITIAL_FAST_BALLOT
from repro.paxos.multi import MastershipState, MastershipTable


def classic(round_, proposer="m"):
    return Ballot(round_, fast=False, proposer=proposer)


def fast(round_, proposer=""):
    return Ballot(round_, fast=True, proposer=proposer)


class TestMastershipState:
    def test_default_is_fast_everywhere(self):
        state = MastershipState()
        assert state.is_fast(0)
        assert state.is_fast(10**6)
        assert state.effective_ballot(5) == INITIAL_FAST_BALLOT

    def test_grant_higher_ballot(self):
        state = MastershipState()
        granted = state.grant(BallotRange(0, 99, classic(1)))
        assert granted
        assert not state.is_fast(50)
        assert state.effective_ballot(50) == classic(1)
        # Outside the range the default still applies.
        assert state.is_fast(100)

    def test_grant_lower_ballot_rejected(self):
        state = MastershipState()
        assert state.grant(BallotRange(0, None, classic(5)))
        assert not state.grant(BallotRange(10, 20, classic(3)))
        assert state.effective_ballot(15) == classic(5)

    def test_equal_ballot_rescopes_own_lease(self):
        """An equal-ballot grant is the same master re-scoping its lease:
        accepted, and authoritative for the instances it covers."""
        state = MastershipState()
        assert state.grant(BallotRange(0, 10, classic(2)))
        assert state.grant(BallotRange(5, 15, classic(2)))
        assert state.effective_ballot(3) == classic(2)  # head preserved
        assert state.effective_ballot(12) == classic(2)
        assert state.is_fast(16)  # beyond the re-scoped lease: default

    def test_bounded_regrant_truncates_open_ended_promise(self):
        """The §3.3.2 γ mechanics: recovery's Phase 1 takes an open-ended
        classic promise [v, ∞); the post-recovery grant [v, v+γ-1] with the
        same ballot must supersede it so instances past the horizon revert
        to fast (regression: γ had no effect while the ∞ promise shadowed
        every later instance)."""
        state = MastershipState()
        assert state.grant(BallotRange(7, None, classic(3)))
        assert not state.is_fast(1_000)
        gamma = 10
        assert state.grant(BallotRange(7, 7 + gamma - 1, classic(3)))
        assert not state.is_fast(7)
        assert not state.is_fast(16)
        assert state.is_fast(17)  # first instance past the γ horizon
        assert state.is_fast(1_000)

    def test_non_overlapping_grants_coexist(self):
        state = MastershipState()
        assert state.grant(BallotRange(0, 9, classic(1, "a")))
        assert state.grant(BallotRange(10, 19, classic(1, "b")))
        assert state.effective_ballot(5).proposer == "a"
        assert state.effective_ballot(15).proposer == "b"

    def test_round_robin_masters_per_instance(self):
        # §3.1.2: "supports custom master policies like round-robin".
        state = MastershipState()
        for i, master in enumerate(["a", "b", "c"]):
            assert state.grant(BallotRange(i, i, classic(1, master)))
        assert state.effective_ballot(0).proposer == "a"
        assert state.effective_ballot(1).proposer == "b"
        assert state.effective_ballot(2).proposer == "c"

    def test_higher_grant_shadows_on_overlap(self):
        state = MastershipState()
        assert state.grant(BallotRange(0, None, classic(1, "old")))
        assert state.grant(BallotRange(50, None, classic(2, "new")))
        assert state.effective_ballot(10).proposer == "old"
        assert state.effective_ballot(60).proposer == "new"

    def test_fast_range_grant_restores_fast(self):
        # §3.3.2: after γ classic instances the protocol probes fast again.
        state = MastershipState()
        assert state.grant(BallotRange(0, 99, classic(1)))
        assert state.grant(BallotRange(100, None, fast(2)))
        assert not state.is_fast(99)
        assert state.is_fast(100)

    def test_compact_drops_closed_ranges(self):
        state = MastershipState()
        state.grant(BallotRange(0, 9, classic(1)))
        state.grant(BallotRange(10, 19, classic(2)))
        state.grant(BallotRange(20, None, classic(3)))
        removed = state.compact(below_instance=15)
        assert removed == 1
        assert state.effective_ballot(12) == classic(2)


class TestMastershipTable:
    def test_default_records_not_materialized(self):
        table = MastershipTable()
        assert table.is_fast("items", "k1", 0)
        assert table.peek("items", "k1") is None
        assert len(table) == 0

    def test_state_created_on_demand(self):
        table = MastershipTable()
        state = table.state("items", "k1")
        state.grant(BallotRange(0, 10, classic(1)))
        assert not table.is_fast("items", "k1", 5)
        assert table.is_fast("items", "k2", 5)
        assert len(table) == 1

    def test_same_key_different_table_isolated(self):
        table = MastershipTable()
        table.state("items", "k").grant(BallotRange(0, None, classic(1)))
        assert table.is_fast("orders", "k", 0)
        assert not table.is_fast("items", "k", 0)
