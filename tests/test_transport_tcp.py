"""The asyncio TCP backend, end to end.

Spawns real ``repro serve`` subprocesses (one OS process per storage
node) on freshly-bound loopback ports, drives the micro workload over
the wire, and checks the issue's acceptance bar: transactions commit
across process boundaries, shutdown is clean (no orphans), and the PR 2
flaky-wan chaos schedule — replayed through the framing-layer nemesis —
leaves zero post-heal invariant violations.
"""

import socket

import pytest

from repro.transport.base import TransportError
from repro.transport.runner import run_flaky_wan_parity, run_tcp_workload
from repro.transport.topology import Topology, make_local_topology


def _free_ports(count):
    """Bind-then-release ``count`` distinct loopback ports."""
    sockets, ports = [], []
    for _ in range(count):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        sockets.append(sock)
        ports.append(sock.getsockname()[1])
    for sock in sockets:
        sock.close()
    return ports


def _write_topology(tmp_path, **kwargs):
    kwargs.setdefault("ports", _free_ports(3 * kwargs.get("partitions_per_table", 1)))
    topology = make_local_topology(**kwargs)
    path = tmp_path / "topology.json"
    topology.dump(str(path))
    return str(path), topology


# ----------------------------------------------------------------------
# Topology files
# ----------------------------------------------------------------------
def test_topology_round_trips(tmp_path):
    path, topology = _write_topology(tmp_path, items=30, seed=9)
    loaded = Topology.load(path)
    assert loaded.as_dict() == topology.as_dict()
    assert len(loaded.nodes) == 3
    assert loaded.item_keys()[0] == "item:000000"


def test_topology_preload_is_deterministic(tmp_path):
    path, _ = _write_topology(tmp_path, items=50, seed=11)
    first = Topology.load(path).preload_plan()
    second = Topology.load(path).preload_plan()
    assert first == second
    assert all(100 <= stock <= 200 for _key, stock in first)


def test_topology_preload_splits_by_placement(tmp_path):
    path, topology = _write_topology(tmp_path, items=30, partitions_per_table=2)
    placement = topology.build_placement()
    plan = dict(topology.preload_plan())
    per_node = {
        node_id: dict(topology.local_records(node_id, placement))
        for node_id in topology.nodes
    }
    # every key lands on exactly one partition per DC, with the same stock
    for node_id, records in per_node.items():
        for key, stock in records.items():
            assert plan[key] == stock
    us_west = [n for n in topology.nodes if "us-west" in n]
    covered = set()
    for node_id in us_west:
        covered.update(per_node[node_id])
    assert covered == set(plan)


def test_topology_rejects_non_mdcc_protocols():
    with pytest.raises(TransportError, match="MDCC variants"):
        make_local_topology(protocol="twopc")


# ----------------------------------------------------------------------
# Live cluster smoke
# ----------------------------------------------------------------------
def test_tcp_cluster_commits_across_processes(tmp_path):
    path, _ = _write_topology(tmp_path, items=30, seed=5)
    result = run_tcp_workload(
        path, clients=2, transactions_per_client=3, spawn_servers=True
    )
    assert result["transport"] == "tcp"
    assert result["committed"] >= 1
    assert result["committed"] + result["aborted"] + result["timeouts"] == 6
    assert result["servers_killed"] == [], "servers did not shut down cleanly"
    assert result["frames"]["sent"] > 0 and result["frames"]["received"] > 0


@pytest.mark.parametrize("protocol", ["fast", "multi"])
def test_tcp_variants_commit(tmp_path, protocol):
    path, _ = _write_topology(tmp_path, items=30, seed=5, protocol=protocol)
    result = run_tcp_workload(
        path, clients=2, transactions_per_client=2, spawn_servers=True
    )
    assert result["protocol"] == protocol
    assert result["committed"] >= 1
    assert result["servers_killed"] == []


# ----------------------------------------------------------------------
# Chaos parity: flaky-wan over the real backend
# ----------------------------------------------------------------------
def test_flaky_wan_parity_no_post_heal_violations(tmp_path):
    path, _ = _write_topology(tmp_path, items=40, seed=7)
    result = run_flaky_wan_parity(path, clients=3, chaos_s=2.0)
    assert result["schedule"] == "flaky-wan"
    assert result["committed"] >= 1, "chaos throttled the workload to zero commits"
    assert result["violations"] == []
    assert result["clean"] is True
    assert result["servers_killed"] == []
    # the nemesis actually bit: frames were dropped at the framing layer
    assert result["frames"]["dropped"] > 0
