"""Unit tests for the chaos engine: schedules, controller, scenario glue."""

import pytest

from repro.bench.harness import run_scenario
from repro.db.cluster import build_cluster
from repro.faults import (
    CHAOS_TABLE,
    ChaosController,
    FaultSchedule,
    NAMED_SCHEDULES,
    named_schedule,
)
from repro.storage.schema import Constraint, TableSchema


class TestFaultSchedule:
    def test_builder_chains_and_sorts(self):
        schedule = (
            FaultSchedule("s")
            .recover_dc(40.0, "us-east")
            .fail_dc(10.0, "us-east")
            .degrade_link(20.0, "us-west", "us-east", extra_latency_ms=50.0)
        )
        assert [e.action for e in schedule.sorted_events()] == [
            "fail-dc",
            "degrade-link",
            "recover-dc",
        ]
        assert schedule.horizon_ms == 40.0
        assert schedule.count("fail-dc") == 1

    def test_pair_params_are_order_insensitive(self):
        a = FaultSchedule("a").partition_pair(1.0, "us-west", "eu-west")
        b = FaultSchedule("b").partition_pair(1.0, "eu-west", "us-west")
        assert a.events[0].params == b.events[0].params

    def test_flap_link_expands_to_degrade_restore_cycles(self):
        schedule = FaultSchedule("s").flap_link(
            100.0, "a-dc", "b-dc", period_ms=50.0, cycles=3
        )
        assert schedule.count("degrade-link") == 3
        assert schedule.count("restore-link") == 3
        downs = [
            e.at_ms for e in schedule.sorted_events() if e.action == "degrade-link"
        ]
        assert downs == [100.0, 150.0, 200.0]
        # Flap-down is a full outage of the link.
        assert schedule.sorted_events()[0].params_dict["drop_rate"] == 1.0

    def test_as_dict_is_json_friendly_and_sorted(self):
        schedule = FaultSchedule("s", description="d").fail_dc(5.0, "eu-west")
        payload = schedule.as_dict()
        assert payload["name"] == "s"
        assert payload["events"] == [
            {"at_ms": 5.0, "action": "fail-dc", "params": {"dc": "eu-west"}}
        ]

    def test_negative_event_time_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule("s").fail_dc(-1.0, "us-east")

    def test_named_schedules_scale_with_window(self):
        small = named_schedule("dc-outage", start_ms=0, duration_ms=10_000)
        large = named_schedule("dc-outage", start_ms=0, duration_ms=100_000)
        assert small.horizon_ms == pytest.approx(large.horizon_ms / 10)
        assert [e.action for e in small.sorted_events()] == [
            e.action for e in large.sorted_events()
        ]

    def test_every_named_schedule_builds(self):
        for name in NAMED_SCHEDULES:
            schedule = named_schedule(name)
            assert schedule.name == name
            assert schedule.events
            assert 0 < schedule.min_availability <= 1

    def test_unknown_named_schedule_rejected(self):
        with pytest.raises(ValueError):
            named_schedule("meteor-strike")

    def test_dc_replace_parameterized(self):
        schedule = named_schedule(
            "dc-replace", victim="eu-west", replacement="eu-west-2", donor="us-east"
        )
        params = {
            event.action: event.params_dict for event in schedule.sorted_events()
        }
        assert params["fail-dc"]["dc"] == "eu-west"
        assert params["decommission-dc"]["dc"] == "eu-west"
        assert params["join-dc"] == {
            "dc": "eu-west-2", "like": "eu-west", "donor": "us-east"
        }
        assert schedule.needs_reconfig

    def test_dc_replace_rejects_role_collisions(self):
        with pytest.raises(ValueError):
            named_schedule("dc-replace", victim="us-east", donor="us-east")
        with pytest.raises(ValueError):
            named_schedule("dc-replace", victim="us-east", replacement="us-east")
        with pytest.raises(ValueError):
            named_schedule("dc-replace", replacement="us-west", donor="us-west")

    def test_unknown_schedule_params_rejected_cleanly(self):
        with pytest.raises(ValueError, match="does not accept"):
            named_schedule("dc-outage", victim="eu-west")
        with pytest.raises(ValueError, match="does not accept"):
            named_schedule("dc-replace", meteor=True)


ITEMS = TableSchema("items", constraints={"stock": Constraint(minimum=0)})


def make_cluster(seed=3, protocol="mdcc"):
    cluster = build_cluster(protocol, seed=seed)
    cluster.register_table(ITEMS)
    cluster.load_record("items", "a", {"stock": 10})
    return cluster


class TestChaosController:
    def test_events_fire_at_their_times(self):
        cluster = make_cluster()
        schedule = (
            FaultSchedule("s")
            .fail_dc(100.0, "us-east")
            .partition_pair(200.0, "us-west", "eu-west")
            .recover_dc(300.0, "us-east")
            .heal_pair(400.0, "us-west", "eu-west")
        )
        controller = ChaosController(cluster, schedule)
        controller.install()
        cluster.sim.run(until=150.0)
        assert cluster.network.is_failed("us-east")
        cluster.sim.run(until=250.0)
        assert cluster.network.active_faults()["partitions"] == [
            ("eu-west", "us-west")
        ]
        cluster.sim.run(until=500.0)
        assert cluster.network.active_faults() == {
            "failed_dcs": [],
            "failed_nodes": [],
            "partitions": [],
            "groups": None,
            "degraded_links": [],
            "drop_rate": 0.0,
        }
        assert [e["event"] for e in controller.log] == [
            "dc-failed",
            "partitioned",
            "dc-recovered",
            "partition-healed",
        ]

    def test_install_twice_rejected(self):
        cluster = make_cluster()
        controller = ChaosController(cluster, FaultSchedule("s"))
        controller.install()
        with pytest.raises(RuntimeError):
            controller.install()

    def test_crash_master_fails_the_records_master_node(self):
        cluster = make_cluster()
        from repro.core.options import RecordId

        master_dc = cluster.placement.master_dc(RecordId("items", "a"))
        master_node = cluster.placement.master_node(RecordId("items", "a"))
        schedule = (
            FaultSchedule("s").crash_master(50.0, dc=master_dc).restore_masters(150.0)
        )
        controller = ChaosController(
            cluster, schedule, workload_source=lambda: ("items", ["a"])
        )
        controller.install()
        cluster.sim.run(until=100.0)
        assert cluster.network.is_node_failed(master_node)
        cluster.sim.run(until=200.0)
        assert not cluster.network.is_node_failed(master_node)

    def test_crash_master_without_target_logs_skip(self):
        cluster = make_cluster()
        schedule = FaultSchedule("s").crash_master(50.0, dc="us-east")
        controller = ChaosController(cluster, schedule)  # no workload source
        controller.install()
        cluster.sim.run(until=100.0)
        assert controller.log[-1]["event"] == "crash-master-skipped"

    def test_coordinator_crash_recovers_to_one_outcome(self):
        cluster = make_cluster(seed=11)
        schedule = FaultSchedule("s").crash_coordinator(
            100.0, recover_after_ms=3_000.0
        )
        controller = ChaosController(cluster, schedule)
        controller.install()
        cluster.sim.run(until=60_000.0)
        assert len(controller.recovery_outcomes) == 2  # both racing agents
        verdicts = {o["committed"] for o in controller.recovery_outcomes}
        assert len(verdicts) == 1
        assert controller.probe_problems() == []
        # The probe record lives in its own table, untouched by workloads.
        snapshot = cluster.read_committed(CHAOS_TABLE, "probe:000")
        expected = {"value": 1} if verdicts.pop() else {"value": 0}
        assert snapshot.value == expected

    def test_coordinator_crash_skipped_for_non_mdcc(self):
        cluster = build_cluster("2pc", seed=3)
        schedule = FaultSchedule("s").crash_coordinator(100.0)
        controller = ChaosController(cluster, schedule)
        controller.install()
        cluster.sim.run(until=200.0)
        assert controller.log[-1]["event"] == "coordinator-crash-skipped"
        assert controller.recovery_outcomes == []


class TestRunScenario:
    def test_scenario_result_shape_and_determinism(self):
        schedule = named_schedule("dc-outage", start_ms=1_000, duration_ms=8_000)
        kwargs = dict(
            variant="mdcc",
            num_clients=4,
            num_items=60,
            warmup_ms=1_000,
            measure_ms=8_000,
            seed=5,
            bucket_ms=2_000,
        )
        a = run_scenario(schedule, **kwargs)
        schedule_b = named_schedule("dc-outage", start_ms=1_000, duration_ms=8_000)
        b = run_scenario(schedule_b, **kwargs)
        assert a.as_dict() == b.as_dict()
        assert len(a.timeline) == 4  # 8s / 2s buckets, empties included
        assert a.commits > 0
        assert a.clean

    def test_scenario_uses_schedule_hints(self):
        schedule = named_schedule(
            "follow-the-sun-outage", start_ms=1_000, duration_ms=8_000
        )
        result = run_scenario(
            schedule,
            variant="mdcc",
            num_clients=5,
            num_items=60,
            warmup_ms=1_000,
            measure_ms=8_000,
            seed=5,
            phase_ms=2_000,
        )
        assert result.workload == "geoshift"
        assert result.extra["master_policy"] == "adaptive"

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            run_scenario(FaultSchedule("s"), workload="crud")
