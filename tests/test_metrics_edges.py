"""Edge-case tests for :mod:`repro.metrics` (ISSUE 8 satellites).

Covers the corners the main suite skips: percentile at the fraction
boundaries and two-element interpolation, bucket end-boundary exclusion,
``fraction_below`` with duplicate samples, ``CounterSet.as_dict``
ordering, and the timestamp contract of ``add``/``extend`` (``None``
must not collapse onto ``t=0.0``).
"""

import pytest

from repro.metrics import CounterSet, LatencyRecorder, TimeSeries, percentile


class TestPercentileEdges:
    def test_fraction_zero_is_minimum(self):
        assert percentile([1.0, 5.0, 9.0], 0.0) == 1.0

    def test_fraction_one_is_maximum(self):
        assert percentile([1.0, 5.0, 9.0], 1.0) == 9.0

    def test_two_elements_interpolate_linearly(self):
        # rank = fraction * (n - 1): with n=2 the rank is the fraction
        # itself, so every interior fraction interpolates the pair.
        assert percentile([10.0, 20.0], 0.5) == pytest.approx(15.0)
        assert percentile([10.0, 20.0], 0.25) == pytest.approx(12.5)
        assert percentile([10.0, 20.0], 0.9) == pytest.approx(19.0)

    def test_two_elements_boundaries_exact(self):
        assert percentile([10.0, 20.0], 0.0) == 10.0
        assert percentile([10.0, 20.0], 1.0) == 20.0


class TestBucketCountsBoundaries:
    def test_end_boundary_is_excluded(self):
        series = TimeSeries()
        series.add(999.999, 1.0)   # last instant inside the window
        series.add(1_000.0, 1.0)   # exactly `end`: outside
        counts = series.bucket_counts(500.0, 0.0, 1_000.0)
        assert counts == [(0.0, 0), (500.0, 1)]

    def test_point_on_interior_bucket_edge_goes_right(self):
        series = TimeSeries()
        series.add(500.0, 1.0)
        counts = series.bucket_counts(500.0, 0.0, 1_000.0)
        assert counts == [(0.0, 0), (500.0, 1)]


class TestFractionBelowDuplicates:
    def test_duplicates_count_strictly_below(self):
        rec = LatencyRecorder()
        rec.extend([100.0, 100.0, 100.0, 200.0])
        # bisect_left: samples equal to the threshold are NOT below it.
        assert rec.fraction_below(100.0) == 0.0
        assert rec.fraction_below(200.0) == 0.75
        assert rec.fraction_below(100.5) == 0.75

    def test_all_duplicates(self):
        rec = LatencyRecorder()
        rec.extend([42.0] * 5)
        assert rec.fraction_below(42.0) == 0.0
        assert rec.fraction_below(42.1) == 1.0


class TestCounterSetOrdering:
    def test_as_dict_is_name_sorted_not_insertion_ordered(self):
        counters = CounterSet()
        for name in ("zeta", "alpha", "mid", "beta"):
            counters.increment(name)
        assert list(counters.as_dict()) == ["alpha", "beta", "mid", "zeta"]

    def test_as_dict_values_survive_sorting(self):
        counters = CounterSet()
        counters.increment("b", 2)
        counters.increment("a", 7)
        assert counters.as_dict() == {"a": 7, "b": 2}


class TestTimestampContract:
    def test_add_without_timestamp_is_untimed_not_t0(self):
        rec = LatencyRecorder()
        rec.add(50.0)                  # untimed
        rec.add(60.0, timestamp=0.0)   # a REAL sample at t=0
        # Percentile consumers see both; the time axis only the timed one.
        assert len(rec) == 2
        assert rec.timestamped == [(0.0, 60.0)]

    def test_extend_value_only_contract(self):
        rec = LatencyRecorder()
        rec.extend([1.0, 2.0, 3.0])
        assert rec.values == [1.0, 2.0, 3.0]
        assert rec.timestamped == []

    def test_extend_with_timestamps_pairs_positionally(self):
        rec = LatencyRecorder()
        rec.extend([10.0, 20.0], timestamps=[100.0, 200.0])
        assert rec.timestamped == [(100.0, 10.0), (200.0, 20.0)]

    def test_extend_length_mismatch_rejected(self):
        rec = LatencyRecorder()
        with pytest.raises(ValueError, match="2 values but 3 timestamps"):
            rec.extend([1.0, 2.0], timestamps=[1.0, 2.0, 3.0])
        # A failed extend must not have half-applied.
        assert len(rec) == 0

    def test_extend_accepts_generators_with_timestamps(self):
        rec = LatencyRecorder()
        rec.extend((float(v) for v in (1, 2)), timestamps=iter([5.0, 6.0]))
        assert rec.timestamped == [(5.0, 1.0), (6.0, 2.0)]
