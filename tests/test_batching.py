"""Tests for visibility batching (§7's message-overhead reduction)."""

import pytest

from repro.core.config import MDCCConfig
from repro.core.messages import VisibilityBatch
from repro.db.cluster import build_cluster
from repro.storage.schema import Constraint, TableSchema

ITEMS = TableSchema("items", constraints={"stock": Constraint(minimum=0)})


def make_cluster(seed=1, batch_ms=0.0):
    config = MDCCConfig(visibility_batch_ms=batch_ms)
    cluster = build_cluster("mdcc", seed=seed, config=config)
    cluster.register_table(ITEMS)
    return cluster


def run_tx(cluster, fut, limit_ms=300_000):
    return cluster.sim.run_until(fut, limit=cluster.sim.now + limit_ms)


def drain(cluster, ms=5_000):
    cluster.sim.run(until=cluster.sim.now + ms)


def commit_buys(cluster, client, keys, amount=1):
    """One transaction decrementing every key; returns the outcome."""
    tx = cluster.begin(client)
    for key in keys:
        tx.decrement("items", key, "stock", amount)
    outcome = run_tx(cluster, tx.commit())
    return outcome


class TestBatchMessage:
    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            VisibilityBatch(visibilities=())


class TestBatchingBehaviour:
    def test_disabled_by_default(self):
        cluster = make_cluster(seed=1)
        for i in range(4):
            cluster.load_record("items", f"k{i}", {"stock": 10})
        client = cluster.add_client("us-west")
        assert commit_buys(cluster, client, [f"k{i}" for i in range(4)]).committed
        drain(cluster)
        assert cluster.counters.get("coordinator.visibility_batched") == 0
        assert cluster.network.stats.per_type.get("VisibilityBatch", 0) == 0

    def test_multi_record_tx_batches_visibilities(self):
        """A 4-record transaction sends 4 visibilities to each of 5 DCs
        unbatched (20 messages); batched it sends one batch per replica."""
        cluster = make_cluster(seed=2, batch_ms=5.0)
        for i in range(4):
            cluster.load_record("items", f"k{i}", {"stock": 10})
        client = cluster.add_client("us-west")
        assert commit_buys(cluster, client, [f"k{i}" for i in range(4)]).committed
        drain(cluster)
        sent = cluster.network.stats.per_type
        assert sent.get("VisibilityBatch", 0) == 5  # one per data center
        assert sent.get("Visibility", 0) == 0
        # 3 messages saved per destination.
        assert cluster.counters.get("coordinator.visibility_batched") == 15

    def test_single_record_tx_sends_plain_visibility(self):
        """A batch of one is shipped as a plain Visibility message."""
        cluster = make_cluster(seed=3, batch_ms=5.0)
        cluster.load_record("items", "k", {"stock": 10})
        client = cluster.add_client("us-west")
        assert commit_buys(cluster, client, ["k"]).committed
        drain(cluster)
        sent = cluster.network.stats.per_type
        assert sent.get("VisibilityBatch", 0) == 0
        assert sent.get("Visibility", 0) == 5

    def test_batched_visibilities_apply_identically(self):
        """Replica state after a batched run matches an unbatched run."""
        outcomes = {}
        for batch_ms in (0.0, 5.0):
            cluster = make_cluster(seed=4, batch_ms=batch_ms)
            for i in range(3):
                cluster.load_record("items", f"k{i}", {"stock": 10})
            client = cluster.add_client("us-west")
            assert commit_buys(
                cluster, client, [f"k{i}" for i in range(3)], amount=2
            ).committed
            drain(cluster)
            outcomes[batch_ms] = {
                f"k{i}": {
                    node: snap.value["stock"]
                    for node, snap in cluster.committed_snapshots(
                        "items", f"k{i}"
                    ).items()
                }
                for i in range(3)
            }
        assert outcomes[0.0] == outcomes[5.0]
        for per_node in outcomes[5.0].values():
            assert set(per_node.values()) == {8}

    def test_batching_reduces_messages_under_load(self):
        """Under a multi-record workload, batching cuts total message
        count without losing any committed effect."""
        from repro.bench.harness import run_micro

        results = {}
        for batch_ms in (0.0, 10.0):
            results[batch_ms] = run_micro(
                "mdcc",
                num_clients=10,
                num_items=500,
                warmup_ms=2_000,
                measure_ms=10_000,
                seed=55,
                config=MDCCConfig(visibility_batch_ms=batch_ms),
            )
        plain, batched = results[0.0], results[10.0]
        assert batched.audit_problems == []
        assert batched.constraint_violations == 0
        assert batched.commits > 0.9 * plain.commits
        messages_plain = plain.counters.get("coordinator.visibility_batched", 0)
        messages_batched = batched.counters.get("coordinator.visibility_batched", 0)
        assert messages_plain == 0
        assert messages_batched > 0  # real savings were recorded

    def test_negative_batch_window_rejected(self):
        with pytest.raises(ValueError):
            MDCCConfig(visibility_batch_ms=-1.0)
