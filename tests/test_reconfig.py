"""Elastic membership: directory, epoch fencing, join/leave end-to-end."""

import pytest

from repro.core.messages import FastReply
from repro.core.options import OptionStatus, RecordId
from repro.core.topology import ReplicaMap
from repro.db.cluster import build_cluster
from repro.reconfig.directory import MembershipDirectory, MembershipError
from repro.storage.schema import Constraint, TableSchema

THREE_DCS = ("us-west", "us-east", "eu-west")
ITEMS = TableSchema("items", constraints={"stock": Constraint(minimum=0)})


def make_cluster(protocol="mdcc", seed=1, datacenters=THREE_DCS, **kwargs):
    cluster = build_cluster(
        protocol, seed=seed, datacenters=datacenters, elastic=True, **kwargs
    )
    cluster.register_table(ITEMS)
    return cluster


def run_fut(cluster, fut, limit_ms=240_000):
    return cluster.sim.run_until(fut, limit=cluster.sim.now + limit_ms)


def drain(cluster, ms=5_000):
    cluster.sim.run(until=cluster.sim.now + ms)


def commit_write(cluster, client, key, value):
    tx = cluster.begin(client)
    run_fut(cluster, tx.read("items", key))
    tx.write("items", key, value)
    return run_fut(cluster, tx.commit())


class TestMembershipDirectory:
    def test_initial_state(self):
        directory = MembershipDirectory(THREE_DCS)
        assert directory.active == THREE_DCS
        assert directory.joining == ()
        assert directory.epoch == 0
        assert len(directory) == 3

    def test_join_lifecycle_bumps_epoch_only_on_admit(self):
        directory = MembershipDirectory(THREE_DCS)
        directory.begin_join("ap-southeast", now=10.0)
        assert directory.epoch == 0  # bootstrap does not change quorums
        assert directory.joining == ("ap-southeast",)
        assert "ap-southeast" not in directory.active
        epoch = directory.admit("ap-southeast", now=20.0)
        assert epoch == directory.epoch == 1
        assert directory.active[-1] == "ap-southeast"
        assert directory.joining == ()

    def test_retire_bumps_epoch_and_removes(self):
        directory = MembershipDirectory(THREE_DCS)
        assert directory.retire("us-east", now=5.0) == 1
        assert directory.active == ("us-west", "eu-west")

    def test_abort_join_leaves_epoch_untouched(self):
        directory = MembershipDirectory(THREE_DCS)
        directory.begin_join("ap-southeast")
        directory.abort_join("ap-southeast")
        assert directory.epoch == 0
        assert directory.joining == ()

    def test_invalid_transitions_rejected(self):
        directory = MembershipDirectory(THREE_DCS)
        with pytest.raises(MembershipError):
            directory.begin_join("us-west")  # already active
        with pytest.raises(MembershipError):
            directory.admit("ap-southeast")  # never began joining
        with pytest.raises(MembershipError):
            directory.retire("ap-southeast")  # not a member
        directory.begin_join("ap-southeast")
        with pytest.raises(MembershipError):
            directory.begin_join("ap-southeast")  # double join

    def test_cannot_retire_last_dc(self):
        directory = MembershipDirectory(("solo",))
        with pytest.raises(MembershipError):
            directory.retire("solo")

    def test_history_records_transitions(self):
        directory = MembershipDirectory(THREE_DCS)
        directory.begin_join("ap-southeast", now=1.0)
        directory.admit("ap-southeast", now=2.0)
        directory.retire("us-east", now=3.0)
        events = [(entry["event"], entry["dc"]) for entry in directory.history]
        assert events == [
            ("join-started", "ap-southeast"),
            ("admitted", "ap-southeast"),
            ("retired", "us-east"),
        ]


class TestElasticReplicaMap:
    def make_map(self):
        directory = MembershipDirectory(THREE_DCS)
        placement = ReplicaMap(THREE_DCS, membership=directory)
        return placement, directory

    def test_static_map_reports_epoch_zero(self):
        placement = ReplicaMap(THREE_DCS)
        assert placement.epoch == 0
        assert not placement.is_elastic
        assert placement.joining_datacenters == ()

    def test_datacenters_track_directory(self):
        placement, directory = self.make_map()
        record = RecordId("items", "k")
        assert placement.replication == 3
        directory.begin_join("ap-southeast")
        # Joining DCs replicate but join no quorum.
        assert placement.replication == 3
        assert len(placement.replicas(record)) == 3
        assert len(placement.replicas_for_repair(record)) == 4
        directory.admit("ap-southeast")
        assert placement.replication == 4
        assert placement.epoch == 1
        assert "store-ap-southeast-p0" in placement.replicas(record)

    def test_quorums_resize_with_epoch(self):
        placement, directory = self.make_map()
        assert placement.quorums().as_dict() == {"n": 3, "classic": 2, "fast": 3}
        directory.begin_join("ap-southeast")
        directory.admit("ap-southeast")
        assert placement.quorums().as_dict() == {"n": 4, "classic": 3, "fast": 3}
        directory.retire("us-east")
        directory.retire("eu-west")
        assert placement.quorums().as_dict() == {"n": 2, "classic": 2, "fast": 2}

    def test_hash_mastership_rehashes_on_epoch_bump(self):
        placement, directory = self.make_map()
        records = [RecordId("items", f"k{i}") for i in range(64)]
        before = {record: placement.master_dc(record) for record in records}
        directory.retire("us-east")
        after = {record: placement.master_dc(record) for record in records}
        assert all(dc != "us-east" for dc in after.values())
        assert any(before[r] != after[r] for r in records)

    def test_mismatched_directory_rejected(self):
        directory = MembershipDirectory(("us-west",))
        with pytest.raises(ValueError):
            ReplicaMap(THREE_DCS, membership=directory)


class TestBuildClusterElastic:
    def test_elastic_requires_mdcc_variant(self):
        with pytest.raises(ValueError):
            build_cluster("2pc", elastic=True)

    def test_elastic_cluster_exposes_manager(self):
        cluster = make_cluster()
        assert cluster.reconfig is not None
        assert cluster.membership.epoch == 0
        assert cluster.placement.is_elastic

    def test_static_cluster_has_no_manager(self):
        cluster = build_cluster("mdcc")
        assert cluster.reconfig is None
        assert cluster.membership is None


class TestEpochFencing:
    def test_stale_fast_reply_dropped_and_tally_reset(self):
        cluster = make_cluster()
        cluster.load_record("items", "k", {"stock": 5})
        client = cluster.add_client("us-west")
        tx = cluster.begin(client)
        run_fut(cluster, tx.read("items", "k"))
        tx.write("items", "k", {"stock": 4})
        commit_future = tx.commit()
        # Bump the epoch while the fast round is in flight: every vote
        # cast under epoch 0 must be fenced out of the tally.
        cluster.membership.begin_join("ap-southeast")
        cluster.membership.admit("ap-southeast")
        # The new DC has no storage nodes in this synthetic bump, so the
        # proposal can never reach its (now 3-of-4) fast quorum via the
        # old votes; the learn timeout escalates to the master, which
        # runs a classic round at the new epoch over the live replicas.
        outcome = run_fut(cluster, commit_future)
        assert outcome.committed in (True, False)  # decided, not wedged
        assert cluster.counters.get("reconfig.stale_epoch_dropped") > 0

    def test_stale_epoch_message_counted(self):
        cluster = make_cluster()
        cluster.load_record("items", "k", {"stock": 5})
        node = cluster.storage_nodes["store-us-west-p0"]
        client = cluster.add_client("us-west")
        cluster.membership.begin_join("ap-southeast")
        cluster.membership.admit("ap-southeast")
        before = cluster.counters.get("reconfig.stale_epoch_dropped")
        # The fence runs after the tx lookup, so a live transaction is
        # needed for a hand-crafted stale vote to reach it.
        tx = cluster.begin(client)
        run_fut(cluster, tx.read("items", "k"))
        tx.write("items", "k", {"stock": 4})
        tx.commit(txid="tx-fence")
        stale = FastReply(
            option_id="tx-fence:items/k",
            txid="tx-fence",
            record=RecordId("items", "k"),
            status=OptionStatus.ACCEPTED,
            committed_version=1,
            is_fast_era=True,
            master_hint=node.node_id,
            epoch=0,
        )
        client.handle_fast_reply(stale, "store-us-west-p0")
        assert cluster.counters.get("reconfig.stale_epoch_dropped") > before

    def test_static_cluster_never_fences(self):
        cluster = build_cluster("mdcc", datacenters=THREE_DCS)
        cluster.register_table(ITEMS)
        cluster.load_record("items", "k", {"stock": 5})
        client = cluster.add_client("us-west")
        outcome = commit_write(cluster, client, "k", {"stock": 4})
        assert outcome.committed
        assert cluster.counters.get("reconfig.stale_epoch_dropped") == 0


@pytest.mark.parametrize("protocol", ["mdcc", "fast", "multi"])
class TestJoin:
    def test_join_streams_state_and_admits(self, protocol):
        cluster = make_cluster(protocol)
        for i in range(12):
            cluster.load_record("items", f"i{i}", {"stock": 10})
        client = cluster.add_client("us-west")
        for i in range(3):
            assert commit_write(cluster, client, f"i{i}", {"stock": 9}).committed
        report = run_fut(cluster, cluster.reconfig.join("ap-southeast"))
        assert report["ok"] is True
        assert report["epoch"] == 1
        assert report["records_streamed"] == 12
        assert cluster.membership.active[-1] == "ap-southeast"
        assert cluster.placement.quorums().n == 4
        # The new DC holds every record, including the updated ones.
        for i in range(12):
            snap = cluster.read_committed("items", f"i{i}", dc="ap-southeast")
            expected = 9 if i < 3 else 10
            assert snap.value == {"stock": expected}

    def test_post_join_commits_reach_new_dc(self, protocol):
        cluster = make_cluster(protocol)
        cluster.load_record("items", "k", {"stock": 10})
        client = cluster.add_client("eu-west")
        run_fut(cluster, cluster.reconfig.join("ap-southeast"))
        outcome = commit_write(cluster, client, "k", {"stock": 3})
        assert outcome.committed
        drain(cluster)
        snapshots = cluster.committed_snapshots("items", "k")
        assert len(snapshots) == 4
        assert all(s.value == {"stock": 3} for s in snapshots.values())

    def test_join_transfers_tombstones(self, protocol):
        cluster = make_cluster(protocol)
        cluster.load_record("items", "doomed", {"stock": 1})
        client = cluster.add_client("us-west")
        tx = cluster.begin(client)
        run_fut(cluster, tx.read("items", "doomed"))
        tx.delete("items", "doomed")
        assert run_fut(cluster, tx.commit()).committed
        drain(cluster)
        run_fut(cluster, cluster.reconfig.join("ap-southeast"))
        snap = cluster.read_committed("items", "doomed", dc="ap-southeast")
        assert snap.exists is False
        assert snap.version == 2  # the delete, not a never-existed record


class TestJoinEdgeCases:
    def test_duplicate_join_returns_same_future(self):
        cluster = make_cluster()
        first = cluster.reconfig.join("ap-southeast")
        second = cluster.reconfig.join("ap-southeast")
        assert first is second
        run_fut(cluster, first)

    def test_join_brand_new_dc_clones_template_links(self):
        cluster = make_cluster()
        cluster.load_record("items", "k", {"stock": 2})
        report = run_fut(
            cluster, cluster.reconfig.join("us-east-2", like="us-east")
        )
        assert report["ok"] is True
        assert cluster.network.latency.knows_datacenter("us-east-2")
        # The clone inherits us-east's link profile.
        assert (
            cluster.network.latency.base_rtt("us-east-2", "us-west")
            == cluster.network.latency.base_rtt("us-east", "us-west")
        )
        snap = cluster.read_committed("items", "k", dc="us-east-2")
        assert snap.value == {"stock": 2}

    def test_join_aborts_when_joiner_unreachable_during_catchup(self):
        """A joiner that goes dark after its snapshot landed must NOT be
        admitted: a dark quorum member silently shrinks availability."""
        cluster = make_cluster()
        for i in range(6):
            cluster.load_record("items", f"i{i}", {"stock": 10})
        future = cluster.reconfig.join("ap-southeast")
        op = cluster.reconfig._joins["ap-southeast"]
        while not op.bootstrapped:
            cluster.sim.run(until=cluster.sim.now + 10)
        cluster.network.fail_datacenter("ap-southeast")
        report = run_fut(cluster, future)
        assert report["ok"] is False
        assert report["aborted"] == "catchup-unreachable"
        assert cluster.membership.epoch == 0  # never entered any quorum
        assert cluster.membership.joining == ()
        assert "store-ap-southeast-p0" not in cluster.storage_nodes

    def test_clean_join_reports_caught_up(self):
        cluster = make_cluster()
        cluster.load_record("items", "k", {"stock": 2})
        report = run_fut(cluster, cluster.reconfig.join("ap-southeast"))
        assert report["ok"] is True
        assert report["caught_up"] is True

    def test_join_of_active_member_rejected_without_side_effects(self):
        """Validation precedes mutation: a bogus join of an active DC
        must not heal that DC's standing faults on the way to the error."""
        from repro.reconfig.directory import MembershipError

        cluster = make_cluster()
        cluster.network.fail_datacenter("us-east")
        with pytest.raises(MembershipError):
            cluster.reconfig.join("us-east")
        assert cluster.network.is_failed("us-east")  # fault untouched
        assert cluster.membership.epoch == 0

    def test_mis_scripted_membership_events_do_not_crash_scenarios(self):
        """The chaos controller survives a schedule that joins an active
        member or decommissions a non-member, recording failures."""
        from repro.faults.controller import ChaosController
        from repro.faults.schedule import FaultSchedule

        cluster = make_cluster()
        schedule = FaultSchedule("bogus-membership")
        schedule.join_dc(100.0, "us-east")          # already active
        schedule.decommission_dc(200.0, "mars")      # never a member
        # Passes membership validation but dies wiring the network: the
        # `like` template is unknown, so the RTT clone covers no links
        # (a SimulationError, not a MembershipError).
        schedule.join_dc(300.0, "new-dc", like="no-such-dc")
        controller = ChaosController(cluster, schedule)
        controller.install()
        cluster.sim.run(until=1_000.0)
        failures = [e for e in controller.log if e["event"] == "join-failed"]
        assert {f["dc"] for f in failures} == {"us-east", "new-dc"}
        events = {entry["event"] for entry in controller.log}
        assert "decommission-failed" in events
        assert cluster.membership.epoch == 0
        assert not cluster.network.latency.knows_datacenter("new-dc")

    def test_rejoin_after_decommission_of_same_name(self):
        """Scale-in then scale-out of the same region: the rejoined DC is
        new hardware and must not inherit its dead predecessor's outage."""
        cluster = make_cluster()
        for i in range(5):
            cluster.load_record("items", f"i{i}", {"stock": 10})
        cluster.network.fail_datacenter("eu-west")
        run_fut(cluster, cluster.reconfig.decommission("eu-west"))
        report = run_fut(cluster, cluster.reconfig.join("eu-west"))
        assert report["ok"] is True, report
        assert cluster.membership.epoch == 2
        assert cluster.membership.active == ("us-west", "us-east", "eu-west")
        assert not cluster.network.is_failed("eu-west")
        snap = cluster.read_committed("items", "i2", dc="eu-west")
        assert snap.value == {"stock": 10}

    def test_rejoin_racing_own_decommission_rejected_cleanly(self):
        """A join of a DC whose decommission hasn't dropped its replicas
        yet must fail with MembershipError *before* mutating anything —
        previously it got as far as node construction, crashed on the
        duplicate node ids, and left the DC stuck in `joining` forever
        (poisoning replicas_for_repair and blocking every later rejoin)."""
        from repro.reconfig.directory import MembershipError

        cluster = make_cluster()
        for i in range(5):
            cluster.load_record("items", f"i{i}", {"stock": 10})
        future = cluster.reconfig.decommission("eu-west")
        # Evacuations are still in flight: the old replicas are registered.
        with pytest.raises(MembershipError, match="registered replicas"):
            cluster.reconfig.join("eu-west")
        assert not cluster.membership.is_joining("eu-west")
        run_fut(cluster, future)
        # Once the decommission finished dropping nodes, the rejoin works.
        report = run_fut(cluster, cluster.reconfig.join("eu-west"))
        assert report["ok"] is True, report
        assert cluster.membership.epoch == 2

    def test_join_rotates_donor_when_donor_dark(self):
        cluster = make_cluster()
        cluster.load_record("items", "k", {"stock": 2})
        cluster.network.fail_datacenter("us-east")
        future = cluster.reconfig.join("ap-southeast", donor_dc="us-east")
        report = run_fut(cluster, future)
        assert report["ok"] is True
        assert report["bootstrap_retries"] > 0
        snap = cluster.read_committed("items", "k", dc="ap-southeast")
        assert snap.value == {"stock": 2}


@pytest.mark.parametrize("protocol", ["mdcc", "fast", "multi"])
class TestDecommission:
    def test_decommission_evacuates_and_drops(self, protocol):
        cluster = make_cluster(protocol)
        for i in range(10):
            cluster.load_record("items", f"i{i}", {"stock": 10})
        client = cluster.add_client("us-west")
        assert commit_write(cluster, client, "i0", {"stock": 9}).committed
        report = run_fut(cluster, cluster.reconfig.decommission("us-east"))
        assert report["ok"] is True
        assert report["masterships_unacked"] == 0
        assert report["dropped_nodes"] == ["store-us-east-p0"]
        assert cluster.membership.active == ("us-west", "eu-west")
        assert cluster.placement.quorums().as_dict() == {
            "n": 2,
            "classic": 2,
            "fast": 2,
        }
        # No record routes its mastership at the departed DC any more.
        for i in range(10):
            record = RecordId("items", f"i{i}")
            assert cluster.placement.master_dc(record) != "us-east"
        # And the cluster still commits at the shrunken quorum size.
        outcome = commit_write(cluster, client, "i5", {"stock": 4})
        assert outcome.committed

    def test_decommission_of_dark_dc(self, protocol):
        """The disaster case: the DC is unreachable when it leaves."""
        cluster = make_cluster(protocol)
        for i in range(6):
            cluster.load_record("items", f"i{i}", {"stock": 10})
        cluster.network.fail_datacenter("us-east")
        client = cluster.add_client("us-west")
        report = run_fut(cluster, cluster.reconfig.decommission("us-east"))
        assert report["ok"] is True
        assert cluster.membership.epoch == 1
        outcome = commit_write(cluster, client, "i1", {"stock": 7})
        assert outcome.committed
        drain(cluster)
        snapshots = cluster.committed_snapshots("items", "i1")
        assert len(snapshots) == 2  # the dark DC's replica is gone
        assert all(s.value == {"stock": 7} for s in snapshots.values())


class TestReplaceLifecycle:
    def test_outage_decommission_replacement_join(self):
        """The dc-replace arc without the chaos harness: a 3-DC cluster
        loses one DC, retires it, and admits a bootstrapped replacement;
        quorums end where they started, now including the new DC."""
        cluster = make_cluster(seed=5)
        for i in range(8):
            cluster.load_record("items", f"i{i}", {"stock": 10})
        client = cluster.add_client("us-west")
        cluster.network.fail_datacenter("us-east")
        run_fut(cluster, cluster.reconfig.decommission("us-east"))
        assert commit_write(cluster, client, "i0", {"stock": 8}).committed
        report = run_fut(
            cluster, cluster.reconfig.join("us-east-2", like="us-east")
        )
        assert report["ok"] is True
        assert cluster.membership.epoch == 2
        assert cluster.membership.active == ("us-west", "eu-west", "us-east-2")
        assert cluster.placement.quorums().n == 3
        outcome = commit_write(cluster, client, "i1", {"stock": 6})
        assert outcome.committed
        drain(cluster)
        for key, expected in (("i0", 8), ("i1", 6), ("i7", 10)):
            snapshots = cluster.committed_snapshots("items", key)
            assert set(snapshots) == {
                "store-us-west-p0",
                "store-eu-west-p0",
                "store-us-east-2-p0",
            }
            assert all(
                s.value == {"stock": expected} for s in snapshots.values()
            ), (key, {k: s.value for k, s in snapshots.items()})
