"""Tests for Generalized Paxos ProvedSafe (Algorithm 2, lines 49-57)."""

from dataclasses import dataclass

import pytest

from repro.paxos.ballot import Ballot
from repro.paxos.cstruct import CStruct
from repro.paxos.generalized import CStructReport, deterministic_merge, proved_safe
from repro.paxos.quorum import QuorumSpec

SPEC = QuorumSpec.for_replication(5)
ACCEPTORS = [f"s{i}" for i in range(1, 6)]


@dataclass(frozen=True)
class Delta:
    cid: str

    @property
    def command_id(self):
        return self.cid

    def commutes_with(self, other):
        return isinstance(other, Delta)


@dataclass(frozen=True)
class Phys:
    cid: str

    @property
    def command_id(self):
        return self.cid

    def commutes_with(self, other):
        return False


def rep(acceptor, ballot, commands):
    return CStructReport(
        acceptor=acceptor,
        ballot=ballot,
        value=CStruct(commands) if commands is not None else None,
    )


FAST0 = Ballot(0, fast=True)
CLASSIC1 = Ballot(1, fast=False, proposer="m")


class TestProvedSafe:
    def test_no_votes_returns_empty(self):
        reports = [rep(f"s{i}", None, None) for i in (1, 2, 3)]
        safe = proved_safe(reports, SPEC, ACCEPTORS)
        assert len(safe) == 0

    def test_insufficient_quorum_rejected(self):
        with pytest.raises(ValueError):
            proved_safe([rep("s1", FAST0, [])], SPEC, ACCEPTORS)

    def test_unanimous_fast_votes_survive(self):
        d1, d2 = Delta("d1"), Delta("d2")
        reports = [
            rep("s1", FAST0, [d1, d2]),
            rep("s2", FAST0, [d2, d1]),  # commuted order: same trace
            rep("s3", FAST0, [d1, d2]),
        ]
        safe = proved_safe(reports, SPEC, ACCEPTORS)
        assert safe.ids == {"d1", "d2"}

    def test_partially_seen_commutative_commands_all_survive(self):
        # Quorum members saw different subsets of commuting deltas.  Any
        # fast quorum's intersection glb keeps the common part; the lub of
        # all gammas reunites everything that might have been chosen.
        d1, d2, d3 = Delta("d1"), Delta("d2"), Delta("d3")
        reports = [
            rep("s1", FAST0, [d1, d2]),
            rep("s2", FAST0, [d1, d2, d3]),
            rep("s3", FAST0, [d2, d3]),
        ]
        safe = proved_safe(reports, SPEC, ACCEPTORS)
        # d2 is common to every possible intersection; d1/d3 appear in some.
        assert "d2" in safe.ids
        assert safe.ids <= {"d1", "d2", "d3"}

    def test_conflicting_physical_commands_resolved_deterministically(self):
        # Two physical options in divergent orders: nothing was chosen
        # (no fast quorum can agree), leader merges deterministically.
        x1, x2 = Phys("x1"), Phys("x2")
        reports = [
            rep("s1", FAST0, [x1]),
            rep("s2", FAST0, [x2]),
            rep("s3", FAST0, [x1]),
        ]
        safe = proved_safe(reports, SPEC, ACCEPTORS)
        assert safe.ids <= {"x1", "x2"}
        # Deterministic across calls:
        again = proved_safe(reports, SPEC, ACCEPTORS)
        assert safe.trace_equal(again)

    def test_highest_ballot_wins_over_older(self):
        d_old, d_new = Delta("old"), Delta("new")
        reports = [
            rep("s1", FAST0, [d_old]),
            rep("s2", CLASSIC1, [d_new]),
            rep("s3", CLASSIC1, [d_new]),
        ]
        safe = proved_safe(reports, SPEC, ACCEPTORS)
        # k = classic ballot 1; classic quorums {s2,s3,x} need both
        # responders; both agree on [new].
        assert safe.ids == {"new"}

    def test_classic_ballot_votes_use_classic_quorums(self):
        d = Delta("d")
        reports = [
            rep("s1", CLASSIC1, [d]),
            rep("s2", None, None),
            rep("s3", None, None),
        ]
        safe = proved_safe(reports, SPEC, ACCEPTORS)
        # Classic quorums containing s1 plus two non-responders could have
        # chosen [d]; quorums within responders that exclude s1 could not.
        # {s1} ⊆ some classic quorum {s1,s4,s5}: intersection with Q={s1},
        # all voted, γ = [d]. So [d] must survive.
        assert safe.ids == {"d"}


class TestDeterministicMerge:
    def test_empty_input(self):
        assert len(deterministic_merge([])) == 0
        assert len(deterministic_merge([None, None])) == 0

    def test_single_passthrough(self):
        c = CStruct([Delta("d1")])
        assert deterministic_merge([c]) is c

    def test_merges_disjoint_commands(self):
        a = CStruct([Delta("d1")])
        b = CStruct([Delta("d2")])
        merged = deterministic_merge([a, b])
        assert merged.ids == {"d1", "d2"}

    def test_keeps_common_prefix_first(self):
        x1, x2, x3 = Phys("x1"), Phys("x2"), Phys("x3")
        a = CStruct([x1, x2])
        b = CStruct([x1, x3])
        merged = deterministic_merge([a, b])
        assert merged.commands[0].command_id == "x1"
        assert merged.ids == {"x1", "x2", "x3"}

    def test_deterministic_order(self):
        a = CStruct([Delta("b")])
        b = CStruct([Delta("a")])
        m1 = deterministic_merge([a, b])
        m2 = deterministic_merge([b, a])
        assert [c.command_id for c in m1.commands] == [
            c.command_id for c in m2.commands
        ] or m1.trace_equal(m2)
