"""Unit and property tests for quorum demarcation (§3.4.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.demarcation import (
    DemarcationLimits,
    demarcation_limits,
    escrow_accepts,
)
from repro.storage.schema import Constraint


class TestLimits:
    def test_paper_formula_n5_qf4(self):
        # L = (N - QF)/N * X = (5-4)/5 * 4 = 0.8 for stock 4, min 0.
        limits = demarcation_limits(5, 4, 4.0, Constraint(minimum=0))
        assert limits.lower == pytest.approx(0.8)
        assert limits.upper is None

    def test_zero_slack_when_fast_quorum_is_all(self):
        # Classic mode: full escrow window down to the constraint itself.
        limits = demarcation_limits(5, 5, 4.0, Constraint(minimum=0))
        assert limits.lower == pytest.approx(0.0)

    def test_nonzero_minimum_shifts_limit(self):
        # Headroom is measured above the minimum: X=14, min=10 -> headroom 4.
        limits = demarcation_limits(5, 4, 14.0, Constraint(minimum=10))
        assert limits.lower == pytest.approx(10 + 0.8)

    def test_upper_limit_symmetric(self):
        limits = demarcation_limits(5, 4, 6.0, Constraint(maximum=10))
        # headroom above = 4, slack = 4/5 -> U = 10 - 0.8.
        assert limits.upper == pytest.approx(9.2)
        assert limits.lower is None

    def test_base_below_minimum_clamps_headroom(self):
        limits = demarcation_limits(5, 4, -3.0, Constraint(minimum=0))
        assert limits.lower == pytest.approx(0.0)

    def test_invalid_quorum_rejected(self):
        with pytest.raises(ValueError):
            demarcation_limits(5, 0, 4.0, Constraint(minimum=0))
        with pytest.raises(ValueError):
            demarcation_limits(5, 6, 4.0, Constraint(minimum=0))


class TestEscrow:
    LIMITS = DemarcationLimits(lower=0.8, upper=None)

    def test_paper_example_five_decrements(self):
        """§3.4.2: stock 4, five decrement-by-1 options.  With plain escrow
        (L=0) a node rejects the 5th; with demarcation (L=0.8) the 4th."""
        plain = DemarcationLimits(lower=0.0, upper=None)
        pending = []
        accepted = 0
        for _ in range(5):
            if escrow_accepts(4.0, pending, -1.0, plain):
                pending.append(-1.0)
                accepted += 1
        assert accepted == 4  # 5th rejected by escrow

        pending = []
        accepted = 0
        for _ in range(5):
            if escrow_accepts(4.0, pending, -1.0, self.LIMITS):
                pending.append(-1.0)
                accepted += 1
        assert accepted == 3  # 4th rejected by the demarcation limit

    def test_increments_do_not_consume_lower_budget(self):
        assert escrow_accepts(1.0, [-0.5], +10.0, self.LIMITS)

    def test_pending_increments_ignored_for_lower_bound(self):
        # Worst case assumes increments abort.
        assert not escrow_accepts(1.5, [+5.0], -1.0, self.LIMITS)

    def test_upper_bound_checked(self):
        limits = DemarcationLimits(lower=None, upper=9.2)
        assert escrow_accepts(6.0, [], +3.0, limits)
        assert not escrow_accepts(6.0, [+3.0], +1.0, limits)

    def test_unbounded_accepts_anything(self):
        limits = DemarcationLimits(lower=None, upper=None)
        assert escrow_accepts(0.0, [-100.0], -1000.0, limits)


class TestGlobalSafetyProperty:
    """The paper's safety argument, checked mechanically: if every node
    enforces L locally, no interleaving of fast-quorum commits can drive
    the true value below the constraint minimum."""

    @given(
        base=st.integers(min_value=0, max_value=30),
        deltas=st.lists(st.integers(min_value=1, max_value=4), max_size=25),
        data=st.data(),
    )
    @settings(max_examples=300)
    def test_no_interleaving_violates_constraint(self, base, deltas, data):
        n, fast_quorum = 5, 4
        constraint = Constraint(minimum=0)
        limits = demarcation_limits(n, fast_quorum, float(base), constraint)
        # Each node tracks its own pending set; an option commits iff some
        # fast quorum of nodes accepts it.  The adversary (hypothesis)
        # picks which nodes see each option.
        node_pending = [[] for _ in range(n)]
        committed_total = 0
        for delta in deltas:
            # Adversary chooses the subset of nodes that receive the option.
            receivers = data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=n - 1),
                    unique=True,
                    min_size=1,
                    max_size=n,
                )
            )
            accepting = []
            for node in receivers:
                if escrow_accepts(
                    float(base), node_pending[node], -float(delta), limits
                ):
                    accepting.append(node)
            if len(accepting) >= fast_quorum:
                committed_total += delta
                for node in accepting:
                    node_pending[node].append(-float(delta))
            # Aborted options release their escrow at the nodes that
            # accepted them only sometimes (adversary keeps them pending:
            # the worst case for budget).
        assert base - committed_total >= 0, (
            f"constraint violated: base {base}, committed {committed_total}"
        )
