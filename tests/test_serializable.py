"""Tests for §4.4 read-set validation (serializable transactions).

The paper: "as we already check the write-set for transactions, the
protocol could easily be extended to also consider read-sets, allowing us
to leverage optimistic concurrency control techniques and ultimately
provide full serializability."  These tests exercise that extension:
write-skew prevention, validated read-only transactions, read-read
non-conflicts, and the interplay with commutative updates.
"""

import pytest

from repro.core.options import ReadValidation
from repro.db.cluster import build_cluster
from repro.storage.schema import TableSchema

ITEMS = TableSchema("items")


def make_cluster(protocol="mdcc", seed=1, **kwargs):
    cluster = build_cluster(protocol, seed=seed, **kwargs)
    cluster.register_table(ITEMS)
    return cluster


def run_tx(cluster, fut, limit_ms=300_000):
    return cluster.sim.run_until(fut, limit=cluster.sim.now + limit_ms)


def drain(cluster, ms=5_000):
    cluster.sim.run(until=cluster.sim.now + ms)


class TestReadValidationUpdate:
    def test_negative_vread_rejected(self):
        with pytest.raises(ValueError):
            ReadValidation(vread=-1)

    def test_vread_zero_asserts_absence(self):
        assert ReadValidation(vread=0).vread == 0

    def test_validations_commute_in_options(self):
        from repro.core.options import Option, RecordId

        r = RecordId("items", "x")
        a = Option(txid="t1", record=r, update=ReadValidation(vread=3))
        b = Option(txid="t2", record=r, update=ReadValidation(vread=3))
        assert a.commutes_with(b)
        assert b.commutes_with(a)
        assert a.is_validation and not a.is_commutative


class TestWriteSkew:
    """The canonical anomaly read-committed-without-lost-updates allows
    and serializability forbids: two transactions each read both records
    and write the *other* one."""

    def _write_skew(self, serializable, protocol="mdcc", seed=2):
        cluster = make_cluster(protocol, seed=seed)
        cluster.load_record("items", "x", {"v": 5})
        cluster.load_record("items", "y", {"v": 5})
        c1 = cluster.add_client("us-west")
        c2 = cluster.add_client("us-east")
        t1 = cluster.begin(c1, serializable=serializable)
        t2 = cluster.begin(c2, serializable=serializable)
        for tx in (t1, t2):
            run_tx(cluster, tx.read("items", "x"))
            run_tx(cluster, tx.read("items", "y"))
        t1.write("items", "x", {"v": 0})  # decided using y
        t2.write("items", "y", {"v": 0})  # decided using x
        f1, f2 = t1.commit(), t2.commit()
        o1 = run_tx(cluster, f1)
        o2 = run_tx(cluster, f2)
        drain(cluster)
        return o1.committed, o2.committed

    def test_default_isolation_allows_write_skew(self):
        c1, c2 = self._write_skew(serializable=False)
        assert c1 and c2  # disjoint write-sets: both commit

    def test_serializable_forbids_write_skew(self):
        c1, c2 = self._write_skew(serializable=True)
        # Both aborting is a legal OCC outcome of the symmetric race; both
        # committing is the write-skew anomaly and must not happen.
        assert not (c1 and c2)

    def test_serializable_staggered_write_skew_one_commits(self):
        """When the transactions do not race (t1 fully commits first), t1
        must commit and t2 must abort on its stale validated read."""
        cluster = make_cluster(seed=21)
        cluster.load_record("items", "x", {"v": 5})
        cluster.load_record("items", "y", {"v": 5})
        c1 = cluster.add_client("us-west")
        c2 = cluster.add_client("us-east")

        t1 = cluster.begin(c1, serializable=True)
        t2 = cluster.begin(c2, serializable=True)
        for tx in (t1, t2):
            run_tx(cluster, tx.read("items", "x"))
            run_tx(cluster, tx.read("items", "y"))
        t1.write("items", "x", {"v": 0})
        assert run_tx(cluster, t1.commit()).committed
        drain(cluster)

        t2.write("items", "y", {"v": 0})  # validated read of x is stale now
        assert not run_tx(cluster, t2.commit()).committed

    def test_serializable_write_skew_under_2pc(self):
        c1, c2 = self._write_skew(serializable=True, protocol="2pc", seed=3)
        assert not (c1 and c2)


class TestValidatedReads:
    def test_read_only_serializable_commit(self):
        cluster = make_cluster(seed=4)
        cluster.load_record("items", "x", {"v": 1})
        client = cluster.add_client("us-west")
        tx = cluster.begin(client, serializable=True)
        run_tx(cluster, tx.read("items", "x"))
        outcome = run_tx(cluster, tx.commit())
        assert outcome.committed

    def test_stale_read_aborts(self):
        cluster = make_cluster(seed=5)
        cluster.load_record("items", "x", {"v": 1})
        reader = cluster.add_client("us-west")
        writer = cluster.add_client("us-west")

        tx = cluster.begin(reader, serializable=True)
        run_tx(cluster, tx.read("items", "x"))

        # Another transaction overwrites x before the reader commits.
        w = cluster.begin(writer)
        run_tx(cluster, w.read("items", "x"))
        w.write("items", "x", {"v": 2})
        assert run_tx(cluster, w.commit()).committed
        drain(cluster)

        outcome = run_tx(cluster, tx.commit())
        assert not outcome.committed

    def test_concurrent_readers_do_not_conflict(self):
        cluster = make_cluster(seed=6)
        cluster.load_record("items", "x", {"v": 1})
        futures = []
        for dc in ("us-west", "us-east", "eu-west"):
            tx = cluster.begin(cluster.add_client(dc), serializable=True)
            run_tx(cluster, tx.read("items", "x"))
            futures.append(tx.commit())
        for fut in futures:
            assert run_tx(cluster, fut).committed

    def test_validated_absence(self):
        """vread=0 asserts the record does not exist at commit time."""
        cluster = make_cluster(seed=7)
        client = cluster.add_client("us-west")
        tx = cluster.begin(client, serializable=True)
        reply = run_tx(cluster, tx.read("items", "ghost"))
        assert not reply.exists
        outcome = run_tx(cluster, tx.commit())
        assert outcome.committed

    def test_validated_absence_fails_after_insert(self):
        cluster = make_cluster(seed=8)
        reader = cluster.add_client("us-west")
        writer = cluster.add_client("us-west")
        tx = cluster.begin(reader, serializable=True)
        run_tx(cluster, tx.read("items", "ghost"))

        w = cluster.begin(writer)
        w.insert("items", "ghost", {"v": 1})
        assert run_tx(cluster, w.commit()).committed
        drain(cluster)

        assert not run_tx(cluster, tx.commit()).committed

    def test_written_records_not_double_validated(self):
        """A record that is both read and written carries only the write
        (whose vread guard subsumes the validation)."""
        cluster = make_cluster(seed=9)
        cluster.load_record("items", "x", {"v": 1})
        client = cluster.add_client("us-west")
        tx = cluster.begin(client, serializable=True)
        run_tx(cluster, tx.read("items", "x"))
        tx.write("items", "x", {"v": 2})
        fut = tx.commit()
        assert len(tx.writeset) == 1  # one option, not two
        assert run_tx(cluster, fut).committed

    def test_unsupported_protocols_rejected(self):
        for protocol in ("qw3", "qw4", "megastore"):
            cluster = make_cluster(protocol, seed=10)
            client = cluster.add_client("us-west")
            with pytest.raises(ValueError):
                cluster.begin(client, serializable=True)


class TestValidationVsWriters:
    def test_pending_validation_blocks_writer_until_visibility(self):
        """Between propose and visibility a validation holds a short read
        lock; a write proposed in that window is rejected at the acceptors
        and the writer aborts (it can retry with a fresh read)."""
        cluster = make_cluster(seed=11)
        cluster.load_record("items", "x", {"v": 1})
        reader = cluster.add_client("us-west")
        writer = cluster.add_client("us-west")

        tx = cluster.begin(reader, serializable=True)
        run_tx(cluster, tx.read("items", "x"))
        w = cluster.begin(writer)
        run_tx(cluster, w.read("items", "x"))
        w.write("items", "x", {"v": 99})

        read_fut = tx.commit()  # proposes the validation first
        write_fut = w.commit()
        read_outcome = run_tx(cluster, read_fut)
        write_outcome = run_tx(cluster, write_fut)
        drain(cluster)
        assert read_outcome.committed
        assert not write_outcome.committed

    def test_commutative_delta_rejected_while_validation_pending(self):
        cluster = make_cluster(seed=12)
        cluster.load_record("items", "x", {"v": 10})
        reader = cluster.add_client("us-west")
        writer = cluster.add_client("us-west")

        tx = cluster.begin(reader, serializable=True)
        run_tx(cluster, tx.read("items", "x"))
        d = cluster.begin(writer)
        d.decrement("items", "x", "v", 1)

        read_fut = tx.commit()
        delta_fut = d.commit()
        assert run_tx(cluster, read_fut).committed
        delta_outcome = run_tx(cluster, delta_fut)
        drain(cluster)
        # The delta either lost to the read lock or was serialized after
        # the validation by the master — never a torn schedule.
        snapshot = cluster.read_committed("items", "x")
        if delta_outcome.committed:
            assert snapshot.value["v"] == 9
        else:
            assert snapshot.value["v"] == 10

    def test_validation_after_commit_does_not_bump_version(self):
        cluster = make_cluster(seed=13)
        cluster.load_record("items", "x", {"v": 1})
        client = cluster.add_client("us-west")
        before = cluster.read_committed("items", "x").version

        tx = cluster.begin(client, serializable=True)
        run_tx(cluster, tx.read("items", "x"))
        assert run_tx(cluster, tx.commit()).committed
        drain(cluster)

        after = cluster.read_committed("items", "x").version
        assert after == before  # validations execute as no-ops

    def test_sequential_serializable_transactions(self):
        """Validations leave the record writable afterwards."""
        cluster = make_cluster(seed=14)
        cluster.load_record("items", "x", {"v": 0})
        client = cluster.add_client("us-west")
        for expected in range(3):
            tx = cluster.begin(client, serializable=True)
            reply = run_tx(cluster, tx.read("items", "x"))
            assert reply.value["v"] == expected
            tx.write("items", "x", {"v": expected + 1})
            assert run_tx(cluster, tx.commit()).committed
            drain(cluster)
