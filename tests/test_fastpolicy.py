"""Tests for fast/classic mode policies (§3.3.2 + the §5.3.2 future work)."""

import pytest

from repro.core.config import MDCCConfig
from repro.core.fastpolicy import (
    AdaptiveGammaPolicy,
    StaticGammaPolicy,
    make_policy,
)
from repro.core.options import RecordId

R1 = RecordId("items", "a")
R2 = RecordId("items", "b")


class TestStaticPolicy:
    def test_fixed_horizon(self):
        policy = StaticGammaPolicy(gamma=100, commutative_gamma=100)
        assert policy.classic_horizon(R1, "collision", now=0.0) == 100
        assert policy.classic_horizon(R1, "collision", now=1e6) == 100

    def test_commutative_limit_uses_commutative_gamma(self):
        policy = StaticGammaPolicy(gamma=100, commutative_gamma=0)
        assert policy.classic_horizon(R1, "commutative-limit", now=0.0) == 0
        assert policy.classic_horizon(R1, "collision", now=0.0) == 100


class TestAdaptivePolicy:
    def test_first_collision_starts_at_minimum(self):
        policy = AdaptiveGammaPolicy(gamma_min=8, gamma_max=64, window_ms=1_000)
        assert policy.classic_horizon(R1, "collision", now=100.0) == 8

    def test_rapid_collisions_double_horizon(self):
        policy = AdaptiveGammaPolicy(gamma_min=8, gamma_max=64, window_ms=1_000)
        horizons = [
            policy.classic_horizon(R1, "collision", now=float(t))
            for t in (0, 100, 200, 300, 400)
        ]
        assert horizons == [8, 16, 32, 64, 64]  # capped at gamma_max

    def test_quiet_gap_resets_horizon(self):
        policy = AdaptiveGammaPolicy(gamma_min=8, gamma_max=64, window_ms=1_000)
        policy.classic_horizon(R1, "collision", now=0.0)
        policy.classic_horizon(R1, "collision", now=100.0)  # 16
        assert policy.classic_horizon(R1, "collision", now=10_000.0) == 8

    def test_records_tracked_independently(self):
        policy = AdaptiveGammaPolicy(gamma_min=8, gamma_max=64, window_ms=1_000)
        policy.classic_horizon(R1, "collision", now=0.0)
        policy.classic_horizon(R1, "collision", now=10.0)
        assert policy.current_horizon(R1) == 16
        assert policy.current_horizon(R2) == 8
        assert policy.classic_horizon(R2, "collision", now=20.0) == 8

    def test_boundary_exactly_at_window_counts_as_contended(self):
        policy = AdaptiveGammaPolicy(gamma_min=4, gamma_max=64, window_ms=1_000)
        policy.classic_horizon(R1, "collision", now=0.0)
        assert policy.classic_horizon(R1, "collision", now=1_000.0) == 8

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AdaptiveGammaPolicy(gamma_min=0)
        with pytest.raises(ValueError):
            AdaptiveGammaPolicy(gamma_min=10, gamma_max=5)
        with pytest.raises(ValueError):
            AdaptiveGammaPolicy(window_ms=0)


class TestConfigIntegration:
    def test_make_policy_static_default(self):
        policy = make_policy(MDCCConfig())
        assert isinstance(policy, StaticGammaPolicy)
        assert policy.gamma == 100

    def test_make_policy_adaptive(self):
        config = MDCCConfig(
            gamma_policy="adaptive",
            adaptive_gamma_min=4,
            adaptive_gamma_max=256,
            adaptive_window_ms=2_000,
        )
        policy = make_policy(config)
        assert isinstance(policy, AdaptiveGammaPolicy)
        assert policy.gamma_min == 4
        assert policy.gamma_max == 256

    def test_config_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            MDCCConfig(gamma_policy="oracle")

    def test_config_rejects_bad_adaptive_params(self):
        with pytest.raises(ValueError):
            MDCCConfig(gamma_policy="adaptive", adaptive_gamma_min=0)
        with pytest.raises(ValueError):
            MDCCConfig(
                gamma_policy="adaptive",
                adaptive_gamma_min=16,
                adaptive_gamma_max=8,
            )
        with pytest.raises(ValueError):
            MDCCConfig(gamma_policy="adaptive", adaptive_window_ms=-1)


class TestAdaptiveEndToEnd:
    def test_adaptive_cluster_runs_contended_workload(self):
        """Smoke: the adaptive policy plugs into the full protocol stack
        and keeps its guarantees under contention."""
        from repro.bench.harness import run_micro

        result = run_micro(
            "mdcc",
            num_clients=15,
            num_items=50,
            warmup_ms=2_000,
            measure_ms=10_000,
            seed=33,
            config=MDCCConfig(gamma_policy="adaptive"),
        )
        assert result.commits > 0
        assert result.audit_problems == []
        assert result.constraint_violations == 0
