"""Tests for Fast Paxos collision recovery — §3.3.1's rule and example."""

import pytest

from repro.paxos.ballot import Ballot
from repro.paxos.fast import Phase1bReport, RecoveryChoice, select_recovery_value
from repro.paxos.quorum import QuorumSpec

SPEC = QuorumSpec.for_replication(5)
ACCEPTORS = [f"s{i}" for i in range(1, 6)]  # s1..s5 as in the paper


def report(acceptor, ballot_round, value, fast=True):
    return Phase1bReport(
        acceptor=acceptor,
        ballot=Ballot(ballot_round, fast=fast, proposer="") if ballot_round is not None else None,
        value=value,
    )


class TestPaperExample:
    def test_section_331_worked_example(self):
        """The paper's example: responses from 4 of 5 servers:
        (1,3,v0→v1), (2,4,v1→v2), (3,4,v1→v3), (5,4,v1→v2).
        Intersection analysis forces v1→v2."""
        reports = [
            report("s1", 3, "v0->v1"),
            report("s2", 4, "v1->v2"),
            report("s3", 4, "v1->v3"),
            report("s5", 4, "v1->v2"),
        ]
        choice = select_recovery_value(reports, SPEC, ACCEPTORS)
        assert not choice.is_free
        assert choice.forced == "v1->v2"

    def test_variation_no_agreeing_intersection_is_free(self):
        # All intersections at the highest ballot disagree: leader free.
        reports = [
            report("s1", 4, "a"),
            report("s2", 4, "b"),
            report("s3", 4, "c"),
            report("s5", 4, "d"),
        ]
        choice = select_recovery_value(reports, SPEC, ACCEPTORS)
        assert choice.is_free


class TestRecoveryRule:
    def test_no_votes_is_free(self):
        reports = [report(f"s{i}", None, None) for i in (1, 2, 3)]
        assert select_recovery_value(reports, SPEC, ACCEPTORS).is_free

    def test_unanimous_highest_ballot_forced(self):
        reports = [
            report("s1", 2, "v"),
            report("s2", 2, "v"),
            report("s3", 2, "v"),
            report("s4", 2, "v"),
        ]
        choice = select_recovery_value(reports, SPEC, ACCEPTORS)
        assert choice.forced == "v"

    def test_fast_quorum_already_complete_is_forced(self):
        # 4 of the responders agree: that IS a fast quorum; must re-propose.
        reports = [
            report("s1", 1, "chosen"),
            report("s2", 1, "chosen"),
            report("s3", 1, "chosen"),
            report("s4", 1, "chosen"),
            report("s5", 1, "other"),
        ]
        choice = select_recovery_value(reports, SPEC, ACCEPTORS)
        assert choice.forced == "chosen"

    def test_minority_vote_with_nonresponders_forced(self):
        # Only 3 respond; 2 agree at the highest ballot.  The fast quorum
        # {s1, s2, s4, s5} intersects the responders in {s1, s2} which both
        # say "v" — v may have been chosen, so it is forced.
        reports = [
            report("s1", 1, "v"),
            report("s2", 1, "v"),
            report("s3", None, None),
        ]
        choice = select_recovery_value(reports, SPEC, ACCEPTORS)
        assert choice.forced == "v"

    def test_older_ballot_shadowed_by_higher(self):
        # s1 voted at an older ballot; the highest-ballot members rule.
        reports = [
            report("s1", 1, "old"),
            report("s2", 5, "new"),
            report("s3", 5, "new"),
            report("s4", 5, "new"),
        ]
        choice = select_recovery_value(reports, SPEC, ACCEPTORS)
        assert choice.forced == "new"

    def test_mixed_highest_votes_with_no_common_intersection(self):
        # Highest ballot has two values split 2-2; every 4-member fast
        # quorum's intersection with responders contains both values
        # somewhere... construct: s2,s3 say A; s4,s5 say B; s1 old.
        reports = [
            report("s1", 1, "old"),
            report("s2", 6, "A"),
            report("s3", 6, "A"),
            report("s4", 6, "B"),
            report("s5", 6, "B"),
        ]
        # Fast quorum {s1,s2,s3,s4}: intersection includes s1 (did not vote
        # at 6) -> not counted.  {s2,s3,s4,s5}: values {A,B} -> disagree.
        # No forced value: free.
        choice = select_recovery_value(reports, SPEC, ACCEPTORS)
        assert choice.is_free

    def test_insufficient_responses_rejected(self):
        reports = [report("s1", 1, "v"), report("s2", 1, "v")]
        with pytest.raises(ValueError, match="classic quorum"):
            select_recovery_value(reports, SPEC, ACCEPTORS)

    def test_three_replica_group(self):
        spec3 = QuorumSpec.for_replication(3)  # classic 2, fast 3
        acceptors = ["a", "b", "c"]
        reports = [report("a", 2, "v"), report("b", None, None)]
        choice = select_recovery_value(reports, spec3, acceptors)
        # Only "a" voted at the highest ballot; the paper's conservative
        # rule re-proposes its value (safe: nothing else can have been
        # chosen, and re-proposing a free value is always allowed).
        assert choice.forced == "v"

    def test_split_with_singleton_intersections_picks_deterministically(self):
        # Q = {s1, s2, s4}; s2 says A, s4 says B, s1 voted at an older
        # ballot.  Nothing can have been chosen (any fast quorum needs 4
        # members but A's supporters ⊆ {s2, s3, s5} after excluding voters
        # of other values).  The rule picks one candidate deterministically
        # rather than stalling.
        reports = [
            report("s1", 1, "old"),
            report("s2", 6, "A"),
            report("s4", 6, "B"),
        ]
        choice = select_recovery_value(reports, SPEC, ACCEPTORS)
        assert not choice.is_free
        assert choice.forced in ("A", "B")
        # Deterministic: repeated calls agree.
        again = select_recovery_value(reports, SPEC, ACCEPTORS)
        assert again.forced == choice.forced

    def test_choice_constructors(self):
        assert RecoveryChoice.free().is_free
        forced = RecoveryChoice.must_propose("x")
        assert not forced.is_free and forced.forced == "x"
