"""Property-style tests for concurrent dangling-transaction recovery.

§3.2.3's claim — "the recovery is deterministic and idempotent: several
agents may recover the same transaction concurrently" — must hold not
just on a quiet network but under message loss and racing starts.  Each
seed drives a different interleaving (latency jitter, agent start skew,
drop patterns); the invariant is always the same: every agent that
decides reaches the SAME verdict, and the database converges to exactly
that verdict on every replica.
"""

import pytest

from repro.core.coordinator import MDCCCoordinator
from repro.core.options import RecordId
from repro.db.cluster import build_cluster
from repro.storage.schema import Constraint, TableSchema

ITEMS = TableSchema("items", constraints={"stock": Constraint(minimum=0)})


class CrashingCoordinator(MDCCCoordinator):
    """Dies right before visibility: options learned, nothing executed."""

    def _finish(self, tx):
        tx.finished = True


def dangle_transaction(cluster, txid: str, dc: str = "us-west"):
    """Leave ``txid`` dangling on items/a and items/b; returns the records."""
    cluster.register_table(ITEMS)
    cluster.load_record("items", "a", {"stock": 10})
    cluster.load_record("items", "b", {"stock": 20})
    crasher = CrashingCoordinator(
        cluster.transport,
        f"crasher-{txid}",
        dc,
        placement=cluster.placement,
        config=cluster.config,
        counters=cluster.counters,
    )
    tx = cluster.begin(crasher)
    cluster.sim.run_until(tx.read("items", "a"), limit=cluster.sim.now + 20_000)
    cluster.sim.run_until(tx.read("items", "b"), limit=cluster.sim.now + 20_000)
    tx.write("items", "a", {"stock": 11})
    tx.write("items", "b", {"stock": 21})
    tx.commit(txid=txid)
    cluster.sim.run(until=cluster.sim.now + 10_000)
    return RecordId("items", "a"), RecordId("items", "b")


def assert_converged(cluster, committed: bool):
    expected_a = {"stock": 11} if committed else {"stock": 10}
    expected_b = {"stock": 21} if committed else {"stock": 20}
    for key, expected in (("a", expected_a), ("b", expected_b)):
        for node_id, snapshot in cluster.committed_snapshots("items", key).items():
            assert snapshot.value == expected, (
                f"items/{key} @ {node_id}: expected {expected}, "
                f"found {snapshot.value}"
            )


@pytest.mark.parametrize("seed", range(8))
def test_two_racing_agents_converge(seed):
    """Two agents starting from different DCs with seed-dependent skew
    must agree, and the replicas must hold exactly the agreed outcome."""
    cluster = build_cluster("mdcc", seed=100 + seed)
    record_a, _record_b = dangle_transaction(cluster, f"race-{seed}")

    skew = cluster.rng.stream("test.race").uniform(0.0, 500.0)
    agents = [
        cluster.add_recovery_agent("us-east"),
        cluster.add_recovery_agent("ap-northeast"),
    ]
    futures = [agents[0].recover(f"race-{seed}", record_a)]
    cluster.sim.run(until=cluster.sim.now + skew)
    futures.append(agents[1].recover(f"race-{seed}", record_a))

    results = [
        cluster.sim.run_until(future, limit=cluster.sim.now + 600_000)
        for future in futures
    ]
    cluster.sim.run(until=cluster.sim.now + 10_000)

    assert results[0] == results[1]
    assert_converged(cluster, results[0])


@pytest.mark.parametrize("seed", range(4))
def test_racing_agents_converge_under_message_loss(seed):
    """Same race with 15% random loss: retries and duplicate recovery
    rounds must still collapse to one visible outcome.  The loss can also
    eat the *winning* visibility at some replica, so the post-heal repair
    (an anti-entropy sweep, as in every chaos scenario) runs before the
    convergence check — the verdict itself must never be ambiguous."""
    cluster = build_cluster("mdcc", seed=200 + seed)
    record_a, _record_b = dangle_transaction(cluster, f"lossy-{seed}")

    cluster.network.set_drop_rate(0.15)
    agents = [
        cluster.add_recovery_agent("us-east"),
        cluster.add_recovery_agent("eu-west"),
    ]
    futures = [
        agent.recover(f"lossy-{seed}", record_a) for agent in agents
    ]
    results = [
        cluster.sim.run_until(future, limit=cluster.sim.now + 2_000_000)
        for future in futures
    ]
    cluster.network.set_drop_rate(0.0)
    cluster.sim.run(until=cluster.sim.now + 20_000)

    sweeper = cluster.add_anti_entropy_agent("us-west")
    sweeper.attach_recovery(agents[0])
    for _ in range(2):
        cluster.sim.run_until(
            sweeper.sweep("items", ["a", "b"]), limit=cluster.sim.now + 120_000
        )
        cluster.sim.run(until=cluster.sim.now + 10_000)

    assert results[0] == results[1]
    assert_converged(cluster, results[0])


def test_agent_rejoining_after_decision_sees_cached_outcome():
    """A third agent recovering long after the verdict must re-derive the
    SAME outcome from durable acceptor state, not flip it."""
    cluster = build_cluster("mdcc", seed=33)
    record_a, _record_b = dangle_transaction(cluster, "late")

    first = cluster.add_recovery_agent("us-east")
    verdict = cluster.sim.run_until(
        first.recover("late", record_a), limit=cluster.sim.now + 600_000
    )
    cluster.sim.run(until=cluster.sim.now + 10_000)

    late = cluster.add_recovery_agent("ap-southeast")
    verdict_late = cluster.sim.run_until(
        late.recover("late", record_a), limit=cluster.sim.now + 600_000
    )
    cluster.sim.run(until=cluster.sim.now + 10_000)

    assert verdict_late == verdict
    assert_converged(cluster, verdict)
