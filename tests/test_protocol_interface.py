"""The protocol abstraction layer: registry contract + enforcement.

Two halves.  The first pins the registry itself: which protocols exist,
in what order, with which capability flags, vocabularies and role
factories — the comparison surface of §5.2 as a golden table.  The
second enforces the refactor that motivated the registry: neither the
cluster builder nor the spec layer may special-case a protocol by name
or class again.  The enforcement test scans their source for the
tokens the old special-casing used (``_VARIANTS`` tables, engine class
names, quoted protocol names) so a regression fails loudly with the
offending line.
"""

import inspect

import pytest

import repro.api
import repro.db.cluster
from repro.core.config import MDCCConfig, ProtocolVariant
from repro.db.cluster import build_cluster
from repro.protocols.base import (
    CAPABILITY_FLAGS,
    PROTOCOLS,
    Protocol,
    get_protocol,
    protocols_supporting,
    register_protocol,
)

#: role classes each protocol's factories must build (client, storage).
EXPECTED_ROLES = {
    "mdcc": ("MDCCCoordinator", "MDCCStorageNode"),
    "fast": ("MDCCCoordinator", "MDCCStorageNode"),
    "multi": ("MDCCCoordinator", "MDCCStorageNode"),
    "repcommit": ("ReplicatedCommitClient", "ReplicatedCommitStorageNode"),
    "2pc": ("TwoPCCoordinator", "TwoPCStorageNode"),
    "qw3": ("QuorumWriteClient", "QuorumWriteStorageNode"),
    "qw4": ("QuorumWriteClient", "QuorumWriteStorageNode"),
    "megastore": ("MegastoreClient", "MegastoreStorageNode"),
}


class TestRegistry:
    def test_registry_order_is_the_presentation_order(self):
        assert PROTOCOLS == (
            "mdcc", "fast", "multi", "repcommit", "2pc", "qw3", "qw4", "megastore"
        )

    def test_every_descriptor_is_complete(self):
        for name in PROTOCOLS:
            descriptor = get_protocol(name)
            assert descriptor.name == name
            assert descriptor.summary
            assert descriptor.client_factory is not None
            assert descriptor.storage_factory is not None

    def test_capability_matrix_golden(self):
        matrix = {
            name: tuple(
                flag for flag in CAPABILITY_FLAGS if getattr(get_protocol(name), flag)
            )
            for name in PROTOCOLS
        }
        all_flags = CAPABILITY_FLAGS
        assert matrix == {
            "mdcc": all_flags,
            "fast": all_flags,
            "multi": all_flags,
            "repcommit": (
                "supports_tracing",
                "supports_serializable",
                "supports_tcp",
                "supports_antientropy",
            ),
            "2pc": ("supports_serializable",),
            "qw3": (),
            "qw4": (),
            "megastore": (),
        }

    def test_protocols_supporting(self):
        assert protocols_supporting("supports_placement") == ("mdcc", "fast", "multi")
        assert protocols_supporting("supports_tcp") == (
            "mdcc", "fast", "multi", "repcommit"
        )
        assert protocols_supporting("supports_serializable") == (
            "mdcc", "fast", "multi", "repcommit", "2pc"
        )
        with pytest.raises(ValueError, match="unknown capability flag"):
            protocols_supporting("supports_levitation")

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol 'paxos2'"):
            get_protocol("paxos2")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_protocol(Protocol(name="mdcc", summary="impostor"))

    def test_vocabularies(self):
        assert get_protocol("repcommit").trace_span_kinds == (
            "rc-local-prepare", "rc-paxos-vote", "rc-commit-apply"
        )
        assert "minority" in get_protocol("repcommit").abort_reasons
        assert get_protocol("megastore").abort_reasons == ("log-position-conflict",)
        # QW never aborts: empty vocabulary is a statement, not an omission.
        assert get_protocol("qw3").abort_reasons == ()
        assert get_protocol("qw4").chaos_schedules == ()
        # Network-level schedules only: repcommit has no recovery agent.
        assert get_protocol("repcommit").chaos_schedules == (
            "dc-outage", "rolling-partitions", "flaky-wan"
        )

    def test_megastore_placement_quirks(self):
        descriptor = get_protocol("megastore")
        assert descriptor.single_entity_group
        assert descriptor.preferred_client_dc == "us-west"
        assert not any(
            get_protocol(name).single_entity_group
            for name in PROTOCOLS
            if name != "megastore"
        )


class TestConfigDerivation:
    def test_engine_protocols_parameterize_the_engine(self):
        for name, variant in (
            ("mdcc", ProtocolVariant.MDCC),
            ("fast", ProtocolVariant.FAST),
            ("multi", ProtocolVariant.MULTI),
        ):
            config = get_protocol(name).make_config(5)
            assert isinstance(config, MDCCConfig)
            assert config.variant is variant
            assert config.replication == 5

    def test_non_engine_protocols_make_no_config(self):
        for name in ("repcommit", "2pc", "qw3", "qw4", "megastore"):
            assert get_protocol(name).make_config(5) is None

    def test_default_config_always_exists(self):
        """Every protocol shares the engine's timeout/quorum parameters."""
        for name in PROTOCOLS:
            config = get_protocol(name).default_config(5)
            assert isinstance(config, MDCCConfig)
            assert config.replication == 5
            assert config.quorums.classic_size == 3


class TestRoleConstruction:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_cluster_roles_come_from_the_descriptor(self, protocol):
        cluster = build_cluster(protocol, seed=1)
        client_cls, storage_cls = EXPECTED_ROLES[protocol]
        assert {type(node).__name__ for node in cluster.storage_nodes.values()} == {
            storage_cls
        }
        assert type(cluster.add_client("us-west")).__name__ == client_cls
        assert cluster.descriptor is get_protocol(protocol)


class TestNoSpecialCasing:
    """The refactor's ratchet: protocol dispatch lives ONLY in the
    registry.  The cluster builder and the spec layer must not name a
    protocol or an engine class — they ask the descriptor."""

    #: tokens of the pre-registry dispatch style.
    FORBIDDEN = (
        "ProtocolVariant",
        "_VARIANTS",
        "MDCCCoordinator",
        "MDCCStorageNode",
        "TwoPCCoordinator",
        "TwoPCStorageNode",
        "QuorumWriteClient",
        "QuorumWriteStorageNode",
        "MegastoreClient",
        "MegastoreStorageNode",
        "ReplicatedCommitClient",
        "ReplicatedCommitStorageNode",
    )

    @pytest.mark.parametrize("module", [repro.db.cluster, repro.api])
    def test_no_engine_tokens(self, module):
        source = inspect.getsource(module)
        for token in self.FORBIDDEN:
            offending = [
                line.strip()
                for line in source.splitlines()
                if token in line
            ]
            assert not offending, (
                f"{module.__name__} special-cases via {token!r}: {offending}"
            )

    @pytest.mark.parametrize("module", [repro.db.cluster, repro.api])
    def test_no_quoted_protocol_names(self, module):
        """The only quoted protocol name allowed is the ``"mdcc"``
        default value — never a comparison or a branch."""
        source = inspect.getsource(module)
        for name in PROTOCOLS:
            for line in source.splitlines():
                if f'"{name}"' not in line and f"'{name}'" not in line:
                    continue
                assert name == "mdcc" and 'protocol: str = "mdcc"' in line, (
                    f"{module.__name__} names protocol {name!r} outside the "
                    f"registry: {line.strip()!r}"
                )
