"""Unit tests for ballot ordering and instance-range metadata."""

import pytest

from repro.paxos.ballot import Ballot, BallotRange, INITIAL_FAST_BALLOT


class TestBallotOrdering:
    def test_higher_round_wins(self):
        assert Ballot(2, fast=True) > Ballot(1, fast=False)

    def test_classic_outranks_fast_at_same_round(self):
        # §3.3.1: classic ballot numbers are always higher ranked than fast.
        fast = Ballot(3, fast=True, proposer="a")
        classic = Ballot(3, fast=False, proposer="a")
        assert classic > fast
        assert fast < classic

    def test_proposer_breaks_ties(self):
        a = Ballot(1, fast=False, proposer="node-a")
        b = Ballot(1, fast=False, proposer="node-b")
        assert a < b
        assert a != b

    def test_equality(self):
        assert Ballot(1, True, "x") == Ballot(1, True, "x")
        assert Ballot(1, True, "x") != Ballot(1, False, "x")

    def test_total_order_is_consistent(self):
        ballots = [
            Ballot(0, True),
            Ballot(0, False),
            Ballot(1, True, "a"),
            Ballot(1, True, "b"),
            Ballot(1, False, "a"),
            Ballot(2, True),
        ]
        ordered = sorted(ballots, key=Ballot.sort_key)
        for left, right in zip(ordered, ordered[1:]):
            assert left < right or left == right

    def test_initial_fast_ballot_is_lowest_fast_round_zero(self):
        assert INITIAL_FAST_BALLOT.fast
        assert INITIAL_FAST_BALLOT.round == 0
        assert Ballot(0, fast=False) > INITIAL_FAST_BALLOT

    def test_next_classic_from_fast_same_round(self):
        fast = Ballot(5, fast=True, proposer="m")
        nxt = fast.next_classic("leader")
        assert nxt.round == 5 and nxt.is_classic
        assert nxt > fast

    def test_next_classic_from_classic_bumps_round(self):
        classic = Ballot(5, fast=False, proposer="m")
        nxt = classic.next_classic("leader")
        assert nxt.round == 6 and nxt.is_classic
        assert nxt > classic

    def test_next_fast_bumps_round(self):
        ballot = Ballot(5, fast=False, proposer="m")
        nxt = ballot.next_fast()
        assert nxt.round == 6 and nxt.fast
        assert nxt > ballot


class TestBallotRange:
    def test_default_range_matches_paper(self):
        # §3.3.2: [0, ∞, fast=true, ballot=0]
        default = BallotRange.default()
        assert default.start_instance == 0
        assert default.end_instance is None
        assert default.fast
        assert default.ballot == INITIAL_FAST_BALLOT

    def test_covers_bounded(self):
        r = BallotRange(10, 20, Ballot(1, False, "m"))
        assert not r.covers(9)
        assert r.covers(10) and r.covers(20)
        assert not r.covers(21)

    def test_covers_unbounded(self):
        r = BallotRange(5, None, Ballot(1, True))
        assert not r.covers(4)
        assert r.covers(5) and r.covers(10**9)

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            BallotRange(-1, 5, Ballot(1, True))
        with pytest.raises(ValueError):
            BallotRange(10, 5, Ballot(1, True))

    def test_fast_flag_comes_from_ballot(self):
        assert BallotRange(0, None, Ballot(1, True)).fast
        assert not BallotRange(0, None, Ballot(1, False)).fast
