"""Causal tracing (ISSUE 8): determinism, stitching, attribution.

The contract under test:

* the simulated trajectory is byte-identical with tracing on or off —
  per MDCC variant, the run's result envelope must not change;
* the trace artifact itself is byte-reproducible at a fixed seed;
* spans stitch coordinator -> master -> storage across both transports
  with no orphan spans (every ``parent_id`` resolves);
* abort and slow-path causes are attributed at the decision site:
  collision escalations, recovery completions, demarcation rejections.
"""

import asyncio
import json
import socket

import pytest

from repro.api import ClusterSpec, ScenarioSpec, run_scenario
from repro.cli import _as_dict
from repro.db.cluster import build_cluster
from repro.storage.schema import Constraint, TableSchema
from repro.trace import (
    MetricsRegistry,
    NOOP,
    Tracer,
    build_artifact,
    derive_trace_id,
    render_artifact_json,
    render_explain,
)
from repro.trace import runtime as trace_runtime


@pytest.fixture(autouse=True)
def _clean_runtime():
    """A leaked ambient tracer would poison every later test."""
    trace_runtime.uninstall()
    yield
    trace_runtime.uninstall()


def _micro_spec(protocol, seed=3, schedule=None, **overrides):
    kwargs = dict(clients=3, items=12, warmup_s=0.25, measure_s=1.5)
    kwargs.update(overrides)
    return ScenarioSpec(
        cluster=ClusterSpec(protocol=protocol, seed=seed),
        schedule=schedule,
        **kwargs,
    )


def _traced_run(spec, seed):
    tracer = Tracer(seed=seed)
    registry = MetricsRegistry()
    trace_runtime.install(tracer, registry)
    try:
        result = run_scenario(spec)
    finally:
        trace_runtime.uninstall()
    return result, tracer, registry


# ----------------------------------------------------------------------
# Tracer unit behaviour
# ----------------------------------------------------------------------
class TestTracerModel:
    def test_trace_ids_are_seeded_and_stable(self):
        assert derive_trace_id(7, "tx-1") == derive_trace_id(7, "tx-1")
        assert derive_trace_id(7, "tx-1") != derive_trace_id(8, "tx-1")
        assert len(derive_trace_id(7, "tx-1")) == 16

    def test_span_ids_do_not_depend_on_hashing(self):
        tracer = Tracer(seed=1)
        root = tracer.start_trace("t1", "node-a", 0.0)
        child = tracer.start_span("fast-accept", "node-b", 1.0, parent=root.ctx)
        assert root.span_id == "node-a:1"
        assert child.span_id == "node-b:1"
        assert child.parent_id == root.span_id

    def test_txid_fallback_parents_to_root(self):
        tracer = Tracer(seed=1)
        root = tracer.start_trace("t1", "node-a", 0.0)
        timer_span = tracer.start_span("phase1-takeover", "node-b", 5.0, txid="t1")
        assert timer_span.parent_id == root.span_id
        assert timer_span.trace_id == root.trace_id
        assert tracer.orphan_spans() == []

    def test_unknown_parent_is_an_orphan(self):
        tracer = Tracer(seed=1)
        root = tracer.start_trace("t1", "node-a", 0.0)
        tracer.start_span("fast-accept", "node-b", 1.0, parent=(root.trace_id, "ghost:9"))
        assert len(tracer.orphan_spans()) == 1

    def test_finish_is_idempotent_first_outcome_wins(self):
        tracer = Tracer(seed=1)
        span = tracer.start_trace("t1", "n", 0.0)
        span.finish(2.0, "committed")
        span.finish(9.0, "aborted")
        assert span.end == 2.0 and span.outcome == "committed"

    def test_noop_is_ambient_default(self):
        assert trace_runtime.current_tracer() is NOOP
        assert not NOOP.enabled
        assert NOOP.start_span("k", "n", 0.0, txid="t") is None

    def test_scoped_counters_passthrough_without_registry(self):
        from repro.metrics import CounterSet

        counters = CounterSet()
        assert trace_runtime.scoped_counters("n1", counters) is counters

    def test_registry_slices_per_node(self):
        from repro.metrics import CounterSet

        registry = MetricsRegistry()
        trace_runtime.install(Tracer(seed=1), registry)
        shared = CounterSet()
        a = trace_runtime.scoped_counters("node-a", shared)
        b = trace_runtime.scoped_counters("node-b", shared)
        a.increment("x")
        a.increment("x", 2)
        b.increment("x")
        # Shared totals unchanged in meaning; per-node attribution split.
        assert a.get("x") == 4 and shared.get("x") == 4
        merged = registry.as_dict()["counters"]
        assert merged["node-a"]["x"] == 3
        assert merged["node-b"]["x"] == 1


# ----------------------------------------------------------------------
# Observer effect: the trajectory must not notice the tracer
# ----------------------------------------------------------------------
class TestTraceObserverEffect:
    @pytest.mark.parametrize("protocol", ["mdcc", "fast", "multi"])
    def test_result_envelope_identical_with_and_without_trace(self, protocol):
        spec = _micro_spec(protocol)
        plain = json.dumps(_as_dict(run_scenario(spec), spec), sort_keys=True)
        result, tracer, _registry = _traced_run(spec, seed=3)
        traced = json.dumps(_as_dict(result, spec), sort_keys=True)
        assert traced == plain
        assert tracer.spans, f"{protocol}: traced run recorded no spans"

    def test_artifact_bytes_reproducible(self):
        spec = _micro_spec("mdcc")
        _, tracer1, reg1 = _traced_run(spec, seed=3)
        _, tracer2, reg2 = _traced_run(spec, seed=3)
        first = render_artifact_json(build_artifact(tracer1, reg1))
        second = render_artifact_json(build_artifact(tracer2, reg2))
        assert first == second


# ----------------------------------------------------------------------
# Causal timelines on the simulator
# ----------------------------------------------------------------------
class TestSimTimelines:
    def test_fast_path_commit_timeline(self):
        spec = _micro_spec("mdcc")
        _, tracer, _ = _traced_run(spec, seed=3)
        assert tracer.orphan_spans() == []
        roots = [s for s in tracer.spans if s.kind == "transaction"]
        fast = [
            s for s in roots if s.outcome == "committed" and s.attrs.get("fast_path")
        ]
        assert fast, "no committed fast-path transaction traced"
        root = fast[0]
        children = [s for s in tracer.spans if s.parent_id == root.span_id]
        kinds = {s.kind for s in children}
        assert "fast-accept" in kinds
        assert "visibility-fanout" in kinds
        accepts = [s for s in children if s.kind == "fast-accept"]
        # The fan-out reached storage nodes on other DCs, stitched to the root.
        assert len({s.node for s in accepts}) >= 3
        text = render_explain(tracer, root.txid)
        assert "transaction @" in text and "fast-accept @" in text

    def test_multi_variant_records_phase2_tally(self):
        spec = _micro_spec("multi")
        _, tracer, _ = _traced_run(spec, seed=3)
        assert tracer.orphan_spans() == []
        tallies = [s for s in tracer.spans if s.kind == "phase2-tally"]
        assert tallies, "classic-path run produced no phase2-tally spans"
        assert all(s.outcome in ("decided", "superseded", "abdicated") or s.end is None
                   for s in tallies)

    def test_coordinator_crash_recovery_timeline(self):
        spec = _micro_spec(
            "mdcc", seed=11, schedule="coordinator-crash",
            clients=4, warmup_s=0.5, measure_s=3.0,
        )
        result, tracer, _ = _traced_run(spec, seed=11)
        assert result.clean
        assert tracer.orphan_spans() == []
        # The dangling probe transaction: proposed, never finished by its
        # (crashed) coordinator, completed by chaos recovery agents.
        dangling = [
            s
            for s in tracer.spans
            if s.kind == "transaction" and s.txid.startswith("chaos-dangling")
        ]
        assert dangling
        root = dangling[0]
        assert root.end is None  # the dead coordinator never finished it
        trace_spans = [s for s in tracer.spans if s.trace_id == root.trace_id]
        by_kind = {}
        for span in trace_spans:
            by_kind.setdefault(span.kind, []).append(span)
        assert "fast-accept" in by_kind
        recoveries = by_kind.get("recovery-escalation", [])
        done = [s for s in recoveries if s.outcome in ("committed", "aborted")]
        assert done, "no recovery agent completed the dangling transaction"
        # The agents' spans parent back to the dangling root: stitched.
        assert all(s.parent_id == root.span_id for s in recoveries)
        # Master arbitration ran under the same trace.
        assert "phase1-takeover" in by_kind or "phase2-tally" in by_kind
        text = render_explain(tracer, root.txid)
        assert "recovery-escalation" in text

    def test_collision_abort_is_attributed(self):
        tracer = Tracer(seed=7)
        trace_runtime.install(tracer)
        try:
            cluster = build_cluster("mdcc", seed=7)
            cluster.register_table(
                TableSchema("items", constraints={"stock": Constraint(minimum=0)})
            )
            cluster.load_record("items", "hot", {"stock": 100})
            c1 = cluster.add_client("us-west")
            c2 = cluster.add_client("ap-southeast")
            t1, t2 = cluster.begin(c1), cluster.begin(c2)
            limit = lambda: cluster.sim.now + 120_000  # noqa: E731
            cluster.sim.run_until(t1.read("items", "hot"), limit=limit())
            cluster.sim.run_until(t2.read("items", "hot"), limit=limit())
            t1.write("items", "hot", {"stock": 99})
            t2.write("items", "hot", {"stock": 98})
            f1, f2 = t1.commit(), t2.commit()
            o1 = cluster.sim.run_until(f1, limit=limit())
            o2 = cluster.sim.run_until(f2, limit=limit())
            cluster.sim.run(until=cluster.sim.now + 5_000)
        finally:
            trace_runtime.uninstall()
        assert o1.committed != o2.committed  # exactly one wins
        assert tracer.orphan_spans() == []
        roots = [s for s in tracer.spans if s.kind == "transaction"]
        loser = next(s for s in roots if s.outcome == "aborted")
        assert any(e["name"] == "collision" for e in loser.events)
        mixed = [
            s
            for s in tracer.spans
            if s.trace_id == loser.trace_id and s.kind == "fast-accept"
        ]
        # The collision is visible in the timeline: acceptors split.
        outcomes = {s.outcome for s in mixed}
        assert outcomes == {"accepted", "rejected"}
        escalations = [
            s
            for s in tracer.spans
            if s.trace_id == loser.trace_id and s.kind == "recovery-escalation"
        ]
        assert escalations and escalations[0].attrs.get("reason") == "collision"

    def test_demarcation_rejection_is_attributed(self):
        tracer = Tracer(seed=5)
        trace_runtime.install(tracer)
        try:
            cluster = build_cluster("mdcc", seed=5)
            cluster.register_table(
                TableSchema("items", constraints={"stock": Constraint(minimum=0)})
            )
            cluster.load_record("items", "scarce", {"stock": 4})
            clients = [cluster.add_client(dc) for dc in
                       ("us-west", "us-east", "eu-west", "ap-northeast", "ap-southeast")]
            futures = []
            for client in clients:
                tx = cluster.begin(client)
                tx.decrement("items", "scarce", "stock", 2)
                futures.append(tx.commit())
            for future in futures:
                cluster.sim.run_until(future, limit=cluster.sim.now + 240_000)
            cluster.sim.run(until=cluster.sim.now + 5_000)
        finally:
            trace_runtime.uninstall()
        checks = [s for s in tracer.spans if s.kind == "demarcation-check"]
        # 5 writers x 2 units against stock 4 under a per-DC escrow share:
        # some acceptor must have hit its demarcation limit.
        assert checks, "no demarcation-limit rejection was traced"
        assert all(s.outcome == "demarcation-limit" for s in checks)
        assert tracer.orphan_spans() == []


# ----------------------------------------------------------------------
# TCP transport: context over real sockets
# ----------------------------------------------------------------------
def _free_ports(count):
    sockets, ports = [], []
    for _ in range(count):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        sockets.append(sock)
        ports.append(sock.getsockname()[1])
    for sock in sockets:
        sock.close()
    return ports


class TestTcpStitching:
    def test_spans_stitch_across_sockets(self):
        """One transport per storage node + a driver transport, all in one
        process under one ambient tracer: the envelope's trace context must
        stitch coordinator spans to storage-node spans across real TCP."""
        from repro.core.coordinator import MDCCCoordinator
        from repro.core.storage_node import MDCCStorageNode
        from repro.db.client import Transaction
        from repro.metrics import CounterSet
        from repro.transport.runner import _await_future
        from repro.transport.tcp import AsyncioTcpTransport
        from repro.transport.topology import make_local_topology
        from repro.workloads.micro import MicroBenchmark

        topology = make_local_topology(
            datacenters=("us-west", "us-east", "eu-west"),
            seed=5,
            items=10,
            ports=_free_ports(3),
        )
        tracer = Tracer(seed=5)
        trace_runtime.install(tracer, MetricsRegistry())

        async def drive():
            placement = topology.build_placement()
            config = topology.build_config()
            transports = []
            try:
                for node_id, address in sorted(topology.nodes.items()):
                    transport = AsyncioTcpTransport(
                        topology,
                        local_dc=address.dc,
                        listen=(address.host, address.port),
                    )
                    node = MDCCStorageNode(
                        transport,
                        node_id,
                        address.dc,
                        placement=placement,
                        config=config,
                        counters=CounterSet(),
                    )
                    node.store.register_table(MicroBenchmark.schema())
                    for key, stock in topology.local_records(node_id, placement):
                        node.store.record("items", key).commit_value({"stock": stock})
                    await transport.start()
                    transports.append(transport)
                driver = AsyncioTcpTransport(topology, local_dc="us-west", listen=None)
                transports.append(driver)
                coordinator = MDCCCoordinator(
                    driver,
                    "app-us-west-driver1",
                    "us-west",
                    placement=placement,
                    config=config,
                    counters=CounterSet(),
                )
                outcomes = []
                for key in topology.item_keys()[:2]:
                    tx = Transaction(
                        coordinator, commutative=config.commutative_enabled
                    )
                    await asyncio.wait_for(
                        _await_future(tx.read("items", key)), 30.0
                    )
                    tx.decrement("items", key, "stock", 1)
                    outcomes.append(
                        await asyncio.wait_for(_await_future(tx.commit()), 30.0)
                    )
                return outcomes
            finally:
                for transport in transports:
                    await transport.close()

        try:
            outcomes = asyncio.run(drive())
        finally:
            trace_runtime.uninstall()

        assert all(outcome.committed for outcome in outcomes)
        assert tracer.orphan_spans() == []
        roots = [s for s in tracer.spans if s.kind == "transaction"]
        assert len(roots) == 2
        for root in roots:
            accepts = [
                s
                for s in tracer.spans
                if s.trace_id == root.trace_id and s.kind == "fast-accept"
            ]
            # Acceptors live on OTHER transports: their spans only parent to
            # the coordinator's root if the context crossed the sockets.
            assert len({s.node for s in accepts}) == 3
            assert all(s.parent_id == root.span_id for s in accepts)
            timeline = render_explain(tracer, root.txid)
            for dc in ("us-west", "us-east", "eu-west"):
                assert f"fast-accept @ store-{dc}-p0" in timeline
