"""Tests for dangling-transaction recovery (§3.2.3) and master behaviour.

An app-server that dies mid-commit must not leave the database wedged:
any node can reconstruct the transaction from the options (which carry the
txid and the full write-set keys) and drive it to a definitive outcome.
"""

from repro.core.coordinator import MDCCCoordinator
from repro.core.options import Option, PhysicalUpdate, RecordId
from repro.core.messages import ProposeFast
from repro.db.cluster import build_cluster
from repro.storage.schema import Constraint, TableSchema

ITEMS = TableSchema("items", constraints={"stock": Constraint(minimum=0)})


class CrashingCoordinator(MDCCCoordinator):
    """A coordinator that dies right before sending visibilities —
    learned options but no Learned/Visibility messages ever go out."""

    def _finish(self, tx):
        tx.finished = True  # swallow the outcome: simulated crash


def make_cluster(seed=1):
    cluster = build_cluster("mdcc", seed=seed)
    cluster.register_table(ITEMS)
    cluster.register_table(TableSchema("orders"))
    return cluster


class TestDanglingRecovery:
    def test_recover_commits_fully_proposed_transaction(self):
        cluster = make_cluster(seed=21)
        cluster.load_record("items", "a", {"stock": 10})
        cluster.load_record("items", "b", {"stock": 20})
        crasher = CrashingCoordinator(
            cluster.transport,
            "crasher",
            "us-west",
            placement=cluster.placement,
            config=cluster.config,
            counters=cluster.counters,
        )
        tx = cluster.begin(crasher)
        cluster.sim.run_until(tx.read("items", "a"), limit=10_000)
        cluster.sim.run_until(tx.read("items", "b"), limit=20_000)
        tx.write("items", "a", {"stock": 11})
        tx.write("items", "b", {"stock": 21})
        tx.commit(txid="dangling-tx")
        cluster.sim.run(until=cluster.sim.now + 10_000)  # options learned, then crash

        # Nothing visible yet: acceptors hold outstanding options.
        assert cluster.read_committed("items", "a").value == {"stock": 10}

        agent = cluster.add_recovery_agent("eu-west")
        fut = agent.recover("dangling-tx", RecordId("items", "a"))
        committed = cluster.sim.run_until(fut, limit=cluster.sim.now + 300_000)
        assert committed is True
        cluster.sim.run(until=cluster.sim.now + 5_000)
        assert cluster.read_committed("items", "a").value == {"stock": 11}
        assert cluster.read_committed("items", "b").value == {"stock": 21}

    def test_recover_aborts_partially_proposed_transaction(self):
        """Coordinator died after proposing only one of two options: the
        missing option proves the tx cannot have committed -> abort."""
        cluster = make_cluster(seed=22)
        cluster.load_record("items", "a", {"stock": 10})
        cluster.load_record("items", "b", {"stock": 20})
        # Craft a half-proposed transaction by hand.
        records = (RecordId("items", "a"), RecordId("items", "b"))
        option_a = Option(
            txid="half-tx",
            record=records[0],
            update=PhysicalUpdate(vread=1, new_value={"stock": 11}),
            writeset=records,
        )
        injector = cluster.add_client("us-west")
        for replica in cluster.placement.replicas(records[0]):
            injector.send(replica, ProposeFast(option=option_a, reply_to=injector.node_id))
        cluster.sim.run(until=cluster.sim.now + 5_000)

        agent = cluster.add_recovery_agent("us-east")
        fut = agent.recover("half-tx", records[0])
        committed = cluster.sim.run_until(fut, limit=cluster.sim.now + 300_000)
        assert committed is False
        cluster.sim.run(until=cluster.sim.now + 5_000)
        # Nothing changed; the outstanding option on "a" was discarded.
        assert cluster.read_committed("items", "a").value == {"stock": 10}
        assert cluster.read_committed("items", "b").value == {"stock": 20}

    def test_record_not_wedged_after_recovery(self):
        """After recovery clears a dangling option, new transactions on
        the same record proceed normally."""
        cluster = make_cluster(seed=23)
        cluster.load_record("items", "a", {"stock": 10})
        records = (RecordId("items", "a"),)
        dangling = Option(
            txid="wedge-tx",
            record=records[0],
            update=PhysicalUpdate(vread=1, new_value={"stock": 99}),
            writeset=records,
        )
        injector = cluster.add_client("us-west")
        for replica in cluster.placement.replicas(records[0]):
            injector.send(replica, ProposeFast(option=dangling, reply_to=injector.node_id))
        cluster.sim.run(until=cluster.sim.now + 5_000)

        # The dangling accepted option blocks new writes (validSingle).
        blocked_tx = cluster.begin(injector)
        cluster.sim.run_until(blocked_tx.read("items", "a"), limit=cluster.sim.now + 10_000)
        blocked_tx.write("items", "a", {"stock": 5})
        blocked = cluster.sim.run_until(
            blocked_tx.commit(), limit=cluster.sim.now + 300_000
        )
        assert not blocked.committed  # rejected while option outstanding

        agent = cluster.add_recovery_agent("us-west")
        fut = agent.recover("wedge-tx", records[0])
        cluster.sim.run_until(fut, limit=cluster.sim.now + 300_000)
        cluster.sim.run(until=cluster.sim.now + 5_000)

        retry = cluster.begin(injector)
        cluster.sim.run_until(retry.read("items", "a"), limit=cluster.sim.now + 10_000)
        value = dict(retry.observed_value("items", "a"))
        value["stock"] = 5
        retry.write("items", "a", value)
        outcome = cluster.sim.run_until(retry.commit(), limit=cluster.sim.now + 300_000)
        assert outcome.committed

    def test_concurrent_recovery_agents_agree(self):
        cluster = make_cluster(seed=24)
        cluster.load_record("items", "a", {"stock": 10})
        crasher = CrashingCoordinator(
            cluster.transport,
            "crasher",
            "ap-northeast",
            placement=cluster.placement,
            config=cluster.config,
            counters=cluster.counters,
        )
        tx = cluster.begin(crasher)
        cluster.sim.run_until(tx.read("items", "a"), limit=10_000)
        tx.write("items", "a", {"stock": 7})
        tx.commit(txid="race-tx")
        cluster.sim.run(until=cluster.sim.now + 10_000)

        agents = [
            cluster.add_recovery_agent("us-west"),
            cluster.add_recovery_agent("eu-west"),
        ]
        futures = [a.recover("race-tx", RecordId("items", "a")) for a in agents]
        results = [
            cluster.sim.run_until(f, limit=cluster.sim.now + 300_000) for f in futures
        ]
        assert results[0] == results[1]
        cluster.sim.run(until=cluster.sim.now + 5_000)
        expected = {"stock": 7} if results[0] else {"stock": 10}
        assert cluster.read_committed("items", "a").value == expected


class TestMasterFailover:
    def test_commit_completes_when_master_dc_is_down(self):
        """A collision whose designated master is unreachable fails over
        to the next master candidate."""
        cluster = make_cluster(seed=25)
        cluster.load_record("items", "hot", {"stock": 50})
        record = RecordId("items", "hot")
        master_dc = cluster.placement.master_dc(record)
        # Two conflicting writers force a collision; master's DC is dead.
        other_dcs = [dc for dc in cluster.placement.datacenters if dc != master_dc]
        cluster.fail_datacenter(master_dc)
        c1 = cluster.add_client(other_dcs[0])
        c2 = cluster.add_client(other_dcs[1])
        t1, t2 = cluster.begin(c1), cluster.begin(c2)
        cluster.sim.run_until(t1.read("items", "hot"), limit=cluster.sim.now + 20_000)
        cluster.sim.run_until(t2.read("items", "hot"), limit=cluster.sim.now + 20_000)
        t1.write("items", "hot", {"stock": 49})
        t2.write("items", "hot", {"stock": 48})
        f1, f2 = t1.commit(), t2.commit()
        o1 = cluster.sim.run_until(f1, limit=cluster.sim.now + 900_000)
        o2 = cluster.sim.run_until(f2, limit=cluster.sim.now + 900_000)
        assert o1.committed != o2.committed
