"""Tests for §4.2 session guarantees (monotonic reads, read-your-writes)."""

from repro.db.cluster import build_cluster
from repro.db.reads import ReadSession
from repro.storage.schema import TableSchema

ITEMS = TableSchema("items")


def make_cluster(seed=1):
    cluster = build_cluster("mdcc", seed=seed)
    cluster.register_table(ITEMS)
    return cluster


def run_tx(cluster, fut, limit_ms=300_000):
    return cluster.sim.run_until(fut, limit=cluster.sim.now + limit_ms)


def drain(cluster, ms=5_000):
    cluster.sim.run(until=cluster.sim.now + ms)


class TestReadYourWrites:
    def test_session_sees_own_write_immediately(self):
        """Right after commit — before visibilities reach the local
        replica — a session read escalates and returns the new value."""
        cluster = make_cluster(seed=1)
        cluster.load_record("items", "x", {"v": 1})
        client = cluster.add_client("us-west")
        session = ReadSession(client)

        tx = cluster.begin(client)
        run_tx(cluster, tx.read("items", "x"))
        tx.write("items", "x", {"v": 2})
        outcome = run_tx(cluster, tx.commit())
        assert outcome.committed
        session.note_commit(outcome, tx.writeset)

        # No drain: the local replica may not have executed yet.
        reply = run_tx(cluster, session.read("items", "x"))
        assert reply.value == {"v": 2}

    def test_aborted_write_does_not_raise_floor(self):
        cluster = make_cluster(seed=2)
        cluster.load_record("items", "x", {"v": 1})
        client = cluster.add_client("us-west")
        session = ReadSession(client)

        tx = cluster.begin(client)
        tx._writeset.put("items", "x", 99, {"v": 5})  # stale guard: aborts
        outcome = run_tx(cluster, tx.commit())
        assert not outcome.committed
        session.note_commit(outcome, tx.writeset)
        assert session.floor("items", "x") == 0


class TestMonotonicReads:
    def test_floor_rises_with_observed_versions(self):
        cluster = make_cluster(seed=3)
        cluster.load_record("items", "x", {"v": 1})
        client = cluster.add_client("us-west")
        session = ReadSession(client)
        reply = run_tx(cluster, session.read("items", "x"))
        assert session.floor("items", "x") == reply.version

    def test_no_older_version_after_remote_observation(self):
        """A session that observed a fresh version via quorum never
        regresses to the stale local replica."""
        cluster = make_cluster(seed=4)
        cluster.load_record("items", "x", {"v": 1})
        writer = cluster.add_client("us-east")
        reader = cluster.add_client("us-west")
        session = ReadSession(reader)

        # A remote writer commits; block the visibility from reaching
        # the reader's local replica by failing its DC link first.
        cluster.network.partition("us-west", "us-east")
        tx = cluster.begin(writer)
        run_tx(cluster, tx.read("items", "x"))
        tx.write("items", "x", {"v": 2})
        assert run_tx(cluster, tx.commit()).committed
        drain(cluster)

        # The reader's session observes the fresh version via quorum read.
        from repro.db.reads import quorum_read

        fresh = run_tx(cluster, quorum_read(reader, "items", "x"))
        assert fresh.version >= 2
        session.observe("items", "x", fresh.version)

        # The local replica is still stale, but the session never shows it.
        local = cluster.read_committed("items", "x", dc="us-west")
        assert local.version < fresh.version
        reply = run_tx(cluster, session.read("items", "x"))
        assert reply.version >= fresh.version
        cluster.network.heal_partition("us-west", "us-east")

    def test_fresh_local_replica_answers_without_escalation(self):
        cluster = make_cluster(seed=5)
        cluster.load_record("items", "x", {"v": 1})
        client = cluster.add_client("us-west")
        session = ReadSession(client)
        first = run_tx(cluster, session.read("items", "x"))
        before = cluster.counters.get("acceptor.reads")
        second = run_tx(cluster, session.read("items", "x"))
        after = cluster.counters.get("acceptor.reads")
        assert second.version >= first.version
        # One local read only — no quorum fan-out.
        assert after - before == 1
