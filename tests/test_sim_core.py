"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.core import (
    SimulationError,
    Simulator,
    all_of,
    any_of,
)


class TestScheduling:
    def test_clock_starts_at_zero(self):
        sim = Simulator()
        assert sim.now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(30.0, fired.append, "c")
        sim.schedule(10.0, fired.append, "a")
        sim.schedule(20.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for label in "abcde":
            sim.schedule(5.0, fired.append, label)
        sim.run()
        assert fired == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(42.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42.5]
        assert sim.now == 42.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(100.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [100.0]

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(10.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_run_until_horizon_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, fired.append, "early")
        sim.schedule(100.0, fired.append, "late")
        sim.run(until=50.0)
        assert fired == ["early"]
        assert sim.now == 50.0
        sim.run()
        assert fired == ["early", "late"]

    def test_run_with_empty_queue_advances_to_until(self):
        sim = Simulator()
        sim.run(until=500.0)
        assert sim.now == 500.0

    def test_event_at_exact_horizon_still_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(50.0, fired.append, "edge")
        sim.run(until=50.0)
        assert fired == ["edge"]

    def test_max_events_guard(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(1.0, reschedule)

        sim.schedule(0.0, reschedule)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_nested_run_rejected(self):
        sim = Simulator()

        def inner():
            sim.run()

        sim.schedule(0.0, inner)
        with pytest.raises(SimulationError):
            sim.run()

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule(5.0, lambda: fired.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 6.0


class TestFuture:
    def test_resolve_and_result(self):
        sim = Simulator()
        fut = sim.future()
        assert not fut.done
        fut.resolve(7)
        assert fut.done
        assert fut.result() == 7

    def test_result_before_resolution_raises(self):
        sim = Simulator()
        fut = sim.future()
        with pytest.raises(SimulationError):
            fut.result()

    def test_double_resolve_raises(self):
        sim = Simulator()
        fut = sim.future()
        fut.resolve(1)
        with pytest.raises(SimulationError):
            fut.resolve(2)

    def test_try_resolve_reports_winner(self):
        sim = Simulator()
        fut = sim.future()
        assert fut.try_resolve("first") is True
        assert fut.try_resolve("second") is False
        assert fut.result() == "first"

    def test_fail_propagates_exception(self):
        sim = Simulator()
        fut = sim.future()
        fut.fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            fut.result()

    def test_callback_after_resolution_runs_immediately(self):
        sim = Simulator()
        fut = sim.future()
        fut.resolve(3)
        seen = []
        fut.add_done_callback(lambda f: seen.append(f.result()))
        assert seen == [3]

    def test_callbacks_run_in_registration_order(self):
        sim = Simulator()
        fut = sim.future()
        order = []
        fut.add_done_callback(lambda f: order.append(1))
        fut.add_done_callback(lambda f: order.append(2))
        fut.resolve(None)
        assert order == [1, 2]

    def test_run_until_returns_result(self):
        sim = Simulator()
        fut = sim.future()
        sim.schedule(25.0, fut.resolve, "done")
        assert sim.run_until(fut) == "done"
        assert sim.now == 25.0

    def test_run_until_deadlock_detected(self):
        sim = Simulator()
        fut = sim.future()
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until(fut)


class TestAggregates:
    def test_all_of_collects_results_in_input_order(self):
        sim = Simulator()
        futs = [sim.future() for _ in range(3)]
        agg = all_of(sim, futs)
        futs[2].resolve("c")
        futs[0].resolve("a")
        assert not agg.done
        futs[1].resolve("b")
        assert agg.done
        assert agg.result() == ["a", "b", "c"]

    def test_all_of_empty_resolves_immediately(self):
        sim = Simulator()
        agg = all_of(sim, [])
        assert agg.done
        assert agg.result() == []

    def test_all_of_fails_fast(self):
        sim = Simulator()
        futs = [sim.future(), sim.future()]
        agg = all_of(sim, futs)
        futs[0].fail(RuntimeError("nope"))
        assert agg.done
        with pytest.raises(RuntimeError):
            agg.result()

    def test_any_of_takes_first(self):
        sim = Simulator()
        futs = [sim.future(), sim.future()]
        agg = any_of(sim, futs)
        futs[1].resolve("winner")
        assert agg.result() == "winner"
        futs[0].resolve("loser")  # late resolution must not disturb aggregate
        assert agg.result() == "winner"

    def test_any_of_requires_inputs(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            any_of(sim, [])


class TestProcess:
    def test_process_delay_yields(self):
        sim = Simulator()
        trace = []

        def proc():
            trace.append(sim.now)
            yield 10.0
            trace.append(sim.now)
            yield 5.0
            trace.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert trace == [0.0, 10.0, 15.0]

    def test_process_waits_on_future(self):
        sim = Simulator()
        fut = sim.future()
        results = []

        def proc():
            value = yield fut
            results.append((sim.now, value))

        sim.spawn(proc())
        sim.schedule(30.0, fut.resolve, "payload")
        sim.run()
        assert results == [(30.0, "payload")]

    def test_process_return_value_resolves_completion(self):
        sim = Simulator()

        def proc():
            yield 1.0
            return "finished"

        process = sim.spawn(proc())
        sim.run()
        assert process.completion.result() == "finished"

    def test_process_exception_fails_completion(self):
        sim = Simulator()

        def proc():
            yield 1.0
            raise ValueError("inside")

        process = sim.spawn(proc())
        sim.run()
        with pytest.raises(ValueError, match="inside"):
            process.completion.result()

    def test_failed_future_raises_inside_process(self):
        sim = Simulator()
        fut = sim.future()
        caught = []

        def proc():
            try:
                yield fut
            except RuntimeError as exc:
                caught.append(str(exc))

        sim.spawn(proc())
        sim.schedule(5.0, fut.fail, RuntimeError("wire failure"))
        sim.run()
        assert caught == ["wire failure"]

    def test_stop_terminates_process(self):
        sim = Simulator()
        trace = []

        def proc():
            while True:
                trace.append(sim.now)
                yield 10.0

        process = sim.spawn(proc())
        sim.schedule(35.0, process.stop)
        sim.run()
        assert trace == [0.0, 10.0, 20.0, 30.0]
        assert process.completion.result() is None

    def test_yield_none_reschedules_immediately(self):
        sim = Simulator()
        trace = []

        def proc():
            trace.append("a")
            yield None
            trace.append("b")

        sim.spawn(proc())
        sim.run()
        assert trace == ["a", "b"]
        assert sim.now == 0.0

    def test_yield_bad_type_fails_process(self):
        sim = Simulator()

        def proc():
            yield "not a future"

        process = sim.spawn(proc())
        sim.run()
        with pytest.raises(SimulationError):
            process.completion.result()

    def test_sleep_future(self):
        sim = Simulator()
        done_at = []

        def proc():
            yield sim.sleep(12.0)
            done_at.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert done_at == [12.0]

    def test_two_processes_interleave(self):
        sim = Simulator()
        trace = []

        def proc(name, period):
            for _ in range(3):
                yield period
                trace.append((name, sim.now))

        sim.spawn(proc("fast", 10.0))
        sim.spawn(proc("slow", 25.0))
        sim.run()
        assert trace == [
            ("fast", 10.0),
            ("fast", 20.0),
            ("slow", 25.0),
            ("fast", 30.0),
            ("slow", 50.0),
            ("slow", 75.0),
        ]
