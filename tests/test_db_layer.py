"""Tests for the DB layer: read strategies, checkers, topology, config."""

import pytest

from repro.core.config import MDCCConfig, ProtocolVariant
from repro.core.options import RecordId
from repro.core.topology import ReplicaMap
from repro.db.checkers import (
    UpdateLedger,
    check_constraints,
    check_replica_convergence,
)
from repro.db.cluster import build_cluster
from repro.db.reads import local_read, pseudo_master_read, quorum_read
from repro.storage.schema import Constraint, TableSchema

ITEMS = TableSchema("items", constraints={"stock": Constraint(minimum=0)})


def make_cluster(protocol="mdcc", seed=1, **kwargs):
    cluster = build_cluster(protocol, seed=seed, **kwargs)
    cluster.register_table(ITEMS)
    return cluster


class TestTopology:
    def test_five_replicas_one_per_dc(self):
        placement = ReplicaMap(
            ["us-west", "us-east", "eu-west", "ap-southeast", "ap-northeast"]
        )
        record = RecordId("items", "k")
        replicas = placement.replicas(record)
        assert len(replicas) == 5
        assert len(set(replicas)) == 5

    def test_partitioning_distributes_keys(self):
        placement = ReplicaMap(["us-west", "us-east", "eu-west"], partitions_per_table=4)
        partitions = {
            placement.partition_of("items", f"k{i}") for i in range(200)
        }
        assert partitions == {0, 1, 2, 3}

    def test_same_key_same_partition_everywhere(self):
        placement = ReplicaMap(["a", "b", "c"], partitions_per_table=4)
        record = RecordId("items", "k7")
        partition = placement.partition_of("items", "k7")
        for node in placement.replicas(record):
            assert node.endswith(f"p{partition}")

    def test_hash_master_policy_spreads(self):
        placement = ReplicaMap(["a", "b", "c", "d", "e"], master_policy="hash")
        masters = {
            placement.master_dc(RecordId("items", f"k{i}")) for i in range(200)
        }
        assert masters == {"a", "b", "c", "d", "e"}

    def test_fixed_master_policy(self):
        placement = ReplicaMap(["a", "b", "c"], master_policy="fixed:b")
        assert placement.master_dc(RecordId("items", "anything")) == "b"

    def test_table_master_policy(self):
        placement = ReplicaMap(
            ["a", "b"], master_policy="table", table_master_dc={"items": "b"}
        )
        assert placement.master_dc(RecordId("items", "k")) == "b"
        with pytest.raises(ValueError):
            placement.master_dc(RecordId("unknown", "k"))

    def test_unknown_policies_rejected(self):
        with pytest.raises(ValueError):
            ReplicaMap(["a"], master_policy="bogus")
        with pytest.raises(ValueError):
            ReplicaMap(["a"], master_policy="fixed:mars")

    def test_master_candidates_start_with_master(self):
        placement = ReplicaMap(["a", "b", "c"], master_policy="fixed:b")
        record = RecordId("items", "k")
        candidates = placement.master_candidates(record)
        assert candidates[0] == placement.master_node(record)
        assert len(candidates) == 3


class TestConfig:
    def test_variant_knobs(self):
        assert ProtocolVariant.MDCC.fast_ballots and ProtocolVariant.MDCC.commutative
        assert ProtocolVariant.FAST.fast_ballots and not ProtocolVariant.FAST.commutative
        assert not ProtocolVariant.MULTI.fast_ballots

    def test_quorum_derivation(self):
        config = MDCCConfig(replication=5)
        assert config.quorums.classic_size == 3
        assert config.quorums.fast_size == 4

    def test_commutative_gamma_defaults_to_gamma(self):
        config = MDCCConfig(gamma=42)
        assert config.effective_commutative_gamma == 42
        assert MDCCConfig(gamma=42, commutative_gamma=7).effective_commutative_gamma == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            MDCCConfig(replication=0)
        with pytest.raises(ValueError):
            MDCCConfig(gamma=0)
        with pytest.raises(ValueError):
            MDCCConfig(learn_timeout_ms=0)

    def test_with_variant(self):
        config = MDCCConfig().with_variant(ProtocolVariant.FAST)
        assert config.variant is ProtocolVariant.FAST


class TestReadStrategies:
    def _commit_remote_write(self, cluster):
        """Write via a client in ap-southeast; return the writer client."""
        client = cluster.add_client("ap-southeast")
        tx = cluster.begin(client)
        cluster.sim.run_until(tx.read("items", "i"), limit=cluster.sim.now + 30_000)
        tx.write("items", "i", {"stock": 1})
        cluster.sim.run_until(tx.commit(), limit=cluster.sim.now + 120_000)
        return client

    def test_local_read_returns_committed(self):
        cluster = make_cluster(seed=31)
        cluster.load_record("items", "i", {"stock": 10})
        client = cluster.add_client("us-west")
        reply = cluster.sim.run_until(
            local_read(client, "items", "i"), limit=30_000
        )
        assert reply.value == {"stock": 10}

    def test_local_read_can_be_stale(self):
        """A replica that missed the visibility still answers with the old
        value — the staleness §4.2 describes."""
        cluster = make_cluster(seed=32)
        cluster.load_record("items", "i", {"stock": 10})
        # Cut off us-west so it misses the update.
        cluster.network.partition("us-west", "ap-southeast")
        cluster.network.partition("us-west", "us-east")
        cluster.network.partition("us-west", "eu-west")
        cluster.network.partition("us-west", "ap-northeast")
        self._commit_remote_write(cluster)  # commits via the other 4 DCs
        reader = cluster.add_client("us-west")
        reply = cluster.sim.run_until(
            local_read(reader, "items", "i"), limit=cluster.sim.now + 30_000
        )
        assert reply.value == {"stock": 10}  # stale

    def test_quorum_read_sees_latest(self):
        cluster = make_cluster(seed=33)
        cluster.load_record("items", "i", {"stock": 10})
        cluster.network.partition("us-west", "ap-southeast")
        cluster.network.partition("us-west", "us-east")
        cluster.network.partition("us-west", "eu-west")
        cluster.network.partition("us-west", "ap-northeast")
        self._commit_remote_write(cluster)
        for dc in ("us-east", "eu-west", "ap-northeast"):
            cluster.network.heal_partition("us-west", dc)
        reader = cluster.add_client("us-west")
        reply = cluster.sim.run_until(
            quorum_read(reader, "items", "i"), limit=cluster.sim.now + 60_000
        )
        assert reply.value == {"stock": 1}  # the freshest of a quorum

    def test_pseudo_master_read_targets_master_dc(self):
        cluster = make_cluster(seed=34)
        cluster.load_record("items", "i", {"stock": 10})
        reader = cluster.add_client("us-west")
        record = RecordId("items", "i")
        master_dc = cluster.placement.master_dc(record)
        reply = cluster.sim.run_until(
            pseudo_master_read(reader, "items", "i"),
            limit=cluster.sim.now + 60_000,
        )
        assert reply.value == {"stock": 10}
        # Latency consistent with a round trip to the master's DC.
        rtt = cluster.network.latency.base_rtt("us-west", master_dc)
        assert cluster.sim.now >= rtt * 0.8


class TestCheckers:
    def test_convergence_clean(self):
        cluster = make_cluster(seed=35)
        cluster.load_record("items", "i", {"stock": 10})
        assert check_replica_convergence(cluster, "items", ["i"]) == []

    def test_convergence_detects_divergence(self):
        cluster = make_cluster(seed=36)
        cluster.load_record("items", "i", {"stock": 10})
        # Manually poke one replica out of line.
        node = cluster.storage_nodes["store-eu-west-p0"]
        node.store.record("items", "i").commit_value({"stock": 1})
        divergences = check_replica_convergence(cluster, "items", ["i"])
        assert len(divergences) == 1

    def test_constraints_clean_and_dirty(self):
        cluster = make_cluster(seed=37)
        cluster.load_record("items", "i", {"stock": 10})
        assert check_constraints(cluster, "items", ["i"]) == []
        node = cluster.storage_nodes["store-us-east-p0"]
        node.store.record("items", "i").commit_value({"stock": -2})
        violations = check_constraints(cluster, "items", ["i"])
        assert len(violations) == 1
        assert violations[0].bound == "min"

    def test_ledger_detects_lost_update(self):
        cluster = make_cluster(seed=38)
        cluster.load_record("items", "i", {"stock": 10})
        ledger = UpdateLedger()
        ledger.track("items", "i", "stock", 10)
        ledger.record_delta("items", "i", "stock", -3)
        # The delta was never applied anywhere: audit must complain.
        problems = ledger.audit(cluster)
        assert problems and "expected 7" in problems[0]

    def test_ledger_clean_after_real_commit(self):
        cluster = make_cluster(seed=39)
        cluster.load_record("items", "i", {"stock": 10})
        ledger = UpdateLedger()
        ledger.track("items", "i", "stock", 10)
        client = cluster.add_client("us-west")
        tx = cluster.begin(client)
        tx.decrement("items", "i", "stock", 3)
        outcome = cluster.sim.run_until(tx.commit(), limit=120_000)
        assert outcome.committed
        ledger.record_delta("items", "i", "stock", -3)
        cluster.sim.run(until=cluster.sim.now + 5_000)
        assert ledger.audit(cluster) == []

    def test_ledger_untracked_raises(self):
        ledger = UpdateLedger()
        with pytest.raises(KeyError):
            ledger.record_delta("items", "x", "stock", -1)
