"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


SMALL = ("--clients", "5", "--items", "100", "--warmup-s", "1", "--measure-s", "4")


class TestRun:
    def test_run_mdcc_micro(self, capsys):
        code, out = run_cli(capsys, "run", "--protocol", "mdcc", *SMALL)
        assert code == 0
        assert "mdcc" in out
        assert "clean" in out

    def test_run_json_output(self, capsys):
        code, out = run_cli(capsys, "run", "--protocol", "qw3", "--json", *SMALL)
        assert code == 0
        payload = json.loads(out)
        assert payload["protocol"] == "qw3"
        assert payload["commits"] > 0
        assert payload["median_ms"] > 0

    def test_run_tpcw(self, capsys):
        code, out = run_cli(
            capsys, "run", "--protocol", "2pc", "--workload", "tpcw", "--json", *SMALL
        )
        assert code == 0
        assert json.loads(out)["commits"] > 0

    def test_run_with_hotspot(self, capsys):
        code, out = run_cli(
            capsys, "run", "--protocol", "mdcc", "--hotspot", "0.1", "--json", *SMALL
        )
        assert code == 0
        assert json.loads(out)["commits"] > 0

    def test_run_with_dc_failure(self, capsys):
        code, out = run_cli(
            capsys,
            "run",
            "--protocol",
            "mdcc",
            "--fail-dc",
            "us-east",
            "--fail-at-s",
            "2",
            "--json",
            *SMALL,
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["commits"] > 0  # commits continue across the outage

    def test_hotspot_rejected_for_tpcw(self):
        with pytest.raises(SystemExit):
            main(["run", "--workload", "tpcw", "--hotspot", "0.1", *SMALL])

    def test_adaptive_policy_flag(self, capsys):
        code, out = run_cli(
            capsys,
            "run",
            "--protocol",
            "mdcc",
            "--gamma-policy",
            "adaptive",
            "--json",
            *SMALL,
        )
        assert code == 0
        assert json.loads(out)["constraint_violations"] == 0


class TestCompare:
    def test_compare_two_protocols(self, capsys):
        code, out = run_cli(
            capsys, "compare", "--protocols", "mdcc,2pc", "--json", *SMALL
        )
        assert code == 0
        rows = json.loads(out)
        assert [r["protocol"] for r in rows] == ["mdcc", "2pc"]
        # The headline result holds even at toy scale.
        assert rows[0]["median_ms"] < rows[1]["median_ms"]

    def test_compare_table_output(self, capsys):
        code, out = run_cli(capsys, "compare", "--protocols", "qw3,qw4", *SMALL)
        assert code == 0
        assert "qw3" in out and "qw4" in out

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            main(["compare", "--protocols", "mdcc,spanner", *SMALL])


class TestList:
    def test_list_table(self, capsys):
        code, out = run_cli(capsys, "list")
        assert code == 0
        for name in (
            "mdcc",
            "megastore",
            "geoshift",
            "adaptive",
            "fixed:<dc>",
            "dc-outage",
        ):
            assert name in out

    def test_list_json(self, capsys):
        code, out = run_cli(capsys, "list", "--json")
        assert code == 0
        catalogue = json.loads(out)
        assert set(catalogue) == {
            "protocols",
            "workloads",
            "master_policies",
            "chaos_schedules",
        }
        assert "multi" in catalogue["protocols"]
        assert "geoshift" in catalogue["workloads"]
        assert "adaptive" in catalogue["master_policies"]
        assert "flaky-wan" in catalogue["chaos_schedules"]


CHAOS_SMALL = (
    "--clients", "5",
    "--items", "100",
    "--warmup-s", "2",
    "--measure-s", "12",
    "--bucket-s", "3",
)


class TestChaos:
    def test_chaos_dc_outage_json_verdict(self, capsys):
        code, out = run_cli(capsys, "chaos", "dc-outage", *CHAOS_SMALL)
        assert code == 0  # exit 0 == invariants clean
        payload = json.loads(out)
        assert payload["schedule"] == "dc-outage"
        assert payload["variant"] == "mdcc"
        assert payload["commits"] > 0
        assert payload["invariants"]["clean"] is True
        # The timeline covers the whole measurement window, empty buckets
        # included (12s / 3s buckets).
        assert len(payload["timeline"]) == 4

    def test_chaos_deterministic_across_runs(self, capsys):
        code_a, out_a = run_cli(
            capsys, "chaos", "dc-outage", "--variant", "multi", "--seed", "7",
            *CHAOS_SMALL,
        )
        code_b, out_b = run_cli(
            capsys, "chaos", "dc-outage", "--variant", "multi", "--seed", "7",
            *CHAOS_SMALL,
        )
        assert code_a == code_b == 0
        assert out_a == out_b  # identical JSON, byte for byte

    def test_chaos_seed_changes_output(self, capsys):
        _, out_a = run_cli(capsys, "chaos", "flaky-wan", "--seed", "1", *CHAOS_SMALL)
        _, out_b = run_cli(capsys, "chaos", "flaky-wan", "--seed", "2", *CHAOS_SMALL)
        assert json.loads(out_a)["commits"] != json.loads(out_b)["commits"]

    def test_chaos_events_flag_includes_log(self, capsys):
        code, out = run_cli(
            capsys, "chaos", "dc-outage", "--events", *CHAOS_SMALL
        )
        assert code == 0
        events = json.loads(out)["chaos_events"]
        assert isinstance(events, list)
        assert any(e["event"] == "dc-failed" for e in events)
        assert any(e["event"] == "dc-recovered" for e in events)

    def test_chaos_unknown_schedule_rejected(self):
        with pytest.raises(SystemExit):
            main(["chaos", "meteor-strike", *CHAOS_SMALL])


class TestMasterPolicy:
    def test_geoshift_adaptive_run(self, capsys):
        code, out = run_cli(
            capsys,
            "run",
            "--protocol",
            "multi",
            "--workload",
            "geoshift",
            "--master-policy",
            "adaptive",
            "--phase-s",
            "2",
            "--json",
            *SMALL,
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["master_policy"] == "adaptive"
        assert payload["commits"] > 0

    def test_fixed_policy_passthrough(self, capsys):
        code, out = run_cli(
            capsys,
            "run",
            "--protocol",
            "multi",
            "--master-policy",
            "fixed:us-east",
            "--json",
            *SMALL,
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["master_policy"] == "fixed:us-east"
        assert payload["commits"] > 0

    def test_adaptive_rejected_for_non_mdcc_protocol(self):
        with pytest.raises(SystemExit):
            main(
                ["run", "--protocol", "2pc", "--master-policy", "adaptive", *SMALL]
            )

    def test_unknown_master_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--master-policy", "round-robin", *SMALL])


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.protocol == "mdcc"
        assert args.workload == "micro"
        assert args.gamma_policy == "static"
        assert args.master_policy == "hash"
