"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


SMALL = ("--clients", "5", "--items", "100", "--warmup-s", "1", "--measure-s", "4")


class TestRun:
    def test_run_mdcc_micro(self, capsys):
        code, out = run_cli(capsys, "run", "--protocol", "mdcc", *SMALL)
        assert code == 0
        assert "mdcc" in out
        assert "clean" in out

    def test_run_json_output(self, capsys):
        code, out = run_cli(capsys, "run", "--protocol", "qw3", "--json", *SMALL)
        assert code == 0
        payload = json.loads(out)
        assert payload["protocol"] == "qw3"
        assert payload["commits"] > 0
        assert payload["median_ms"] > 0

    def test_run_tpcw(self, capsys):
        code, out = run_cli(
            capsys, "run", "--protocol", "2pc", "--workload", "tpcw", "--json", *SMALL
        )
        assert code == 0
        assert json.loads(out)["commits"] > 0

    def test_run_with_hotspot(self, capsys):
        code, out = run_cli(
            capsys, "run", "--protocol", "mdcc", "--hotspot", "0.1", "--json", *SMALL
        )
        assert code == 0
        assert json.loads(out)["commits"] > 0

    def test_run_with_dc_failure(self, capsys):
        code, out = run_cli(
            capsys,
            "run",
            "--protocol",
            "mdcc",
            "--fail-dc",
            "us-east",
            "--fail-at-s",
            "2",
            "--json",
            *SMALL,
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["commits"] > 0  # commits continue across the outage

    def test_hotspot_rejected_for_tpcw(self):
        with pytest.raises(SystemExit):
            main(["run", "--workload", "tpcw", "--hotspot", "0.1", *SMALL])

    def test_adaptive_policy_flag(self, capsys):
        code, out = run_cli(
            capsys,
            "run",
            "--protocol",
            "mdcc",
            "--gamma-policy",
            "adaptive",
            "--json",
            *SMALL,
        )
        assert code == 0
        assert json.loads(out)["constraint_violations"] == 0


class TestCompare:
    def test_compare_two_protocols(self, capsys):
        code, out = run_cli(
            capsys, "compare", "--protocols", "mdcc,2pc", "--json", *SMALL
        )
        assert code == 0
        rows = json.loads(out)
        assert [r["protocol"] for r in rows] == ["mdcc", "2pc"]
        # The headline result holds even at toy scale.
        assert rows[0]["median_ms"] < rows[1]["median_ms"]

    def test_compare_table_output(self, capsys):
        code, out = run_cli(capsys, "compare", "--protocols", "qw3,qw4", *SMALL)
        assert code == 0
        assert "qw3" in out and "qw4" in out

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            main(["compare", "--protocols", "mdcc,spanner", *SMALL])


class TestList:
    def test_list_table(self, capsys):
        code, out = run_cli(capsys, "list")
        assert code == 0
        for name in (
            "mdcc",
            "megastore",
            "geoshift",
            "adaptive",
            "fixed:<dc>",
            "dc-outage",
        ):
            assert name in out

    def test_list_json(self, capsys):
        code, out = run_cli(capsys, "list", "--json")
        assert code == 0
        catalogue = json.loads(out)
        assert set(catalogue) == {
            "protocols",
            "workloads",
            "master_policies",
            "chaos_schedules",
        }
        assert "multi" in catalogue["protocols"]
        assert "geoshift" in catalogue["workloads"]
        assert "adaptive" in catalogue["master_policies"]
        assert "flaky-wan" in catalogue["chaos_schedules"]


CHAOS_SMALL = (
    "--clients", "5",
    "--items", "100",
    "--warmup-s", "2",
    "--measure-s", "12",
    "--bucket-s", "3",
)


class TestChaos:
    def test_chaos_dc_outage_json_verdict(self, capsys):
        code, out = run_cli(capsys, "chaos", "dc-outage", *CHAOS_SMALL)
        assert code == 0  # exit 0 == invariants clean
        payload = json.loads(out)
        assert payload["schedule"] == "dc-outage"
        assert payload["variant"] == "mdcc"
        assert payload["commits"] > 0
        assert payload["invariants"]["clean"] is True
        # The timeline covers the whole measurement window, empty buckets
        # included (12s / 3s buckets).
        assert len(payload["timeline"]) == 4

    def test_chaos_deterministic_across_runs(self, capsys):
        code_a, out_a = run_cli(
            capsys, "chaos", "dc-outage", "--variant", "multi", "--seed", "7",
            *CHAOS_SMALL,
        )
        code_b, out_b = run_cli(
            capsys, "chaos", "dc-outage", "--variant", "multi", "--seed", "7",
            *CHAOS_SMALL,
        )
        assert code_a == code_b == 0
        assert out_a == out_b  # identical JSON, byte for byte

    def test_chaos_deterministic_across_processes(self):
        """Same seed, different interpreters => byte-identical JSON.

        In-process double runs share one PYTHONHASHSEED, so they cannot
        catch hash-order nondeterminism (e.g. iterating a set of waiter
        ids while broadcasting — send order decides which latency-jitter
        draw each message gets).  Running the CLI under two *different*
        hash seeds does.  coordinator-crash is the schedule that fans an
        OptionOutcome out to two racing recovery agents at one instant."""
        import os
        import subprocess
        import sys

        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        outputs = []
        for hashseed in ("1", "42"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
            proc = subprocess.run(
                [sys.executable, "-m", "repro.cli", "chaos",
                 "coordinator-crash", "--seed", "7", *CHAOS_SMALL],
                capture_output=True, text=True, env=env, timeout=300,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        payload = json.loads(outputs[0])
        # The racy path actually ran: recovery agents decided outcomes.
        assert payload["recovery_outcomes"]

    def test_chaos_seed_changes_output(self, capsys):
        _, out_a = run_cli(capsys, "chaos", "flaky-wan", "--seed", "1", *CHAOS_SMALL)
        _, out_b = run_cli(capsys, "chaos", "flaky-wan", "--seed", "2", *CHAOS_SMALL)
        assert json.loads(out_a)["commits"] != json.loads(out_b)["commits"]

    def test_chaos_events_flag_includes_log(self, capsys):
        code, out = run_cli(
            capsys, "chaos", "dc-outage", "--events", *CHAOS_SMALL
        )
        assert code == 0
        events = json.loads(out)["chaos_events"]
        assert isinstance(events, list)
        assert any(e["event"] == "dc-failed" for e in events)
        assert any(e["event"] == "dc-recovered" for e in events)

    def test_chaos_unknown_schedule_rejected(self):
        with pytest.raises(SystemExit):
            main(["chaos", "meteor-strike", *CHAOS_SMALL])


class TestMasterPolicy:
    def test_geoshift_adaptive_run(self, capsys):
        code, out = run_cli(
            capsys,
            "run",
            "--protocol",
            "multi",
            "--workload",
            "geoshift",
            "--master-policy",
            "adaptive",
            "--phase-s",
            "2",
            "--json",
            *SMALL,
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["master_policy"] == "adaptive"
        assert payload["commits"] > 0

    def test_fixed_policy_passthrough(self, capsys):
        code, out = run_cli(
            capsys,
            "run",
            "--protocol",
            "multi",
            "--master-policy",
            "fixed:us-east",
            "--json",
            *SMALL,
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["master_policy"] == "fixed:us-east"
        assert payload["commits"] > 0

    def test_adaptive_rejected_for_non_mdcc_protocol(self):
        with pytest.raises(SystemExit):
            main(
                ["run", "--protocol", "2pc", "--master-policy", "adaptive", *SMALL]
            )

    def test_unknown_master_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--master-policy", "round-robin", *SMALL])


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.protocol == "mdcc"
        assert args.workload == "micro"
        assert args.gamma_policy == "static"
        assert args.master_policy == "hash"


RECONFIG_SMALL = (
    "--clients", "6",
    "--items", "80",
    "--warmup-s", "2",
    "--measure-s", "16",
    "--bucket-s", "4",
    "--datacenters", "us-west,us-east,eu-west",
)


class TestReconfig:
    def test_reconfig_dc_replace_verdict(self, capsys):
        code, out = run_cli(capsys, "reconfig", *RECONFIG_SMALL)
        assert code == 0  # clean invariants AND replacement admitted
        payload = json.loads(out)
        assert payload["schedule"] == "dc-replace"
        assert payload["replacement_admitted"] is True
        membership = payload["membership"]
        assert membership["epoch"] == 2
        assert membership["datacenters"] == ["us-west", "eu-west", "us-east-2"]
        assert membership["quorums"] == {"n": 3, "classic": 2, "fast": 3}
        assert payload["invariants"]["clean"] is True
        assert payload["commits"] > 0

    def test_reconfig_membership_history_ordered(self, capsys):
        code, out = run_cli(capsys, "reconfig", *RECONFIG_SMALL)
        assert code == 0
        history = json.loads(out)["membership"]["history"]
        assert [(h["event"], h["dc"]) for h in history] == [
            ("retired", "us-east"),
            ("join-started", "us-east-2"),
            ("admitted", "us-east-2"),
        ]

    def test_reconfig_deterministic_across_runs(self, capsys):
        code_a, out_a = run_cli(capsys, "reconfig", "--seed", "9", *RECONFIG_SMALL)
        code_b, out_b = run_cli(capsys, "reconfig", "--seed", "9", *RECONFIG_SMALL)
        assert code_a == code_b == 0
        assert out_a == out_b  # identical JSON, byte for byte

    def test_reconfig_seed_changes_output(self, capsys):
        _, out_a = run_cli(capsys, "reconfig", "--seed", "1", *RECONFIG_SMALL)
        _, out_b = run_cli(capsys, "reconfig", "--seed", "2", *RECONFIG_SMALL)
        assert json.loads(out_a)["commits"] != json.loads(out_b)["commits"]

    def test_reconfig_rejects_bad_membership_args(self):
        with pytest.raises(SystemExit):
            main(["reconfig", "--victim", "mars", *RECONFIG_SMALL])
        with pytest.raises(SystemExit):
            # the replacement is already a member
            main(["reconfig", "--replacement", "eu-west", *RECONFIG_SMALL])
        with pytest.raises(SystemExit):
            # the donor is the victim
            main(["reconfig", "--donor", "us-east", *RECONFIG_SMALL])
        with pytest.raises(SystemExit):
            # unknown DC in the membership list
            main(["reconfig", "--datacenters", "us-west,atlantis"])
        with pytest.raises(SystemExit):
            # the victim hosts the reconfig control plane (first DC):
            # failing it would stall the membership operations themselves
            # and quietly invalidate the scenario.
            main(["reconfig", "--victim", "us-west", *RECONFIG_SMALL])

    def test_chaos_accepts_dc_replace_schedule(self, capsys):
        # The named schedule is also replayable through the generic chaos
        # subcommand (the harness auto-builds the cluster elastic).
        code, out = run_cli(
            capsys, "chaos", "dc-replace", "--clients", "5", "--items", "80",
            "--warmup-s", "2", "--measure-s", "16", "--bucket-s", "4",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["membership"]["epoch"] == 2


class TestSeedPlumbing:
    """--seed reaches every experiment-running subcommand and is honored."""

    def test_every_experiment_subcommand_accepts_seed(self):
        parser = build_parser()
        assert parser.parse_args(["run", "--seed", "9"]).seed == 9
        assert parser.parse_args(["compare", "--seed", "9"]).seed == 9
        assert parser.parse_args(["chaos", "dc-outage", "--seed", "9"]).seed == 9
        assert parser.parse_args(["reconfig", "--seed", "9"]).seed == 9

    def test_run_deterministic_across_runs(self, capsys):
        code_a, out_a = run_cli(
            capsys, "run", "--protocol", "mdcc", "--json", "--seed", "5", *SMALL
        )
        code_b, out_b = run_cli(
            capsys, "run", "--protocol", "mdcc", "--json", "--seed", "5", *SMALL
        )
        assert code_a == code_b == 0
        assert out_a == out_b

    def test_run_seed_changes_output(self, capsys):
        _, out_a = run_cli(
            capsys, "run", "--protocol", "mdcc", "--json", "--seed", "1", *SMALL
        )
        _, out_b = run_cli(
            capsys, "run", "--protocol", "mdcc", "--json", "--seed", "2", *SMALL
        )
        assert out_a != out_b

    def test_compare_deterministic_across_runs(self, capsys):
        code_a, out_a = run_cli(
            capsys, "compare", "--protocols", "mdcc,qw3", "--json", "--seed", "3",
            *SMALL,
        )
        code_b, out_b = run_cli(
            capsys, "compare", "--protocols", "mdcc,qw3", "--json", "--seed", "3",
            *SMALL,
        )
        assert code_a == code_b == 0
        assert out_a == out_b
