"""Tests for the anti-entropy replica-repair agent."""

import pytest

from repro.db.checkers import check_replica_convergence
from repro.db.cluster import build_cluster
from repro.storage.schema import Constraint, TableSchema

ITEMS = TableSchema("items", constraints={"stock": Constraint(minimum=0)})


def make_cluster(seed=1, **kwargs):
    cluster = build_cluster("mdcc", seed=seed, **kwargs)
    cluster.register_table(ITEMS)
    return cluster


def run_tx(cluster, fut, limit_ms=300_000):
    return cluster.sim.run_until(fut, limit=cluster.sim.now + limit_ms)


def drain(cluster, ms=5_000):
    cluster.sim.run(until=cluster.sim.now + ms)


def commit_write(cluster, client, key, value):
    tx = cluster.begin(client)
    run_tx(cluster, tx.read("items", key))
    tx.write("items", key, value)
    outcome = run_tx(cluster, tx.commit())
    assert outcome.committed
    drain(cluster)
    return outcome


class TestSweepBasics:
    def test_sweep_on_healthy_cluster_repairs_nothing(self):
        cluster = make_cluster(seed=1)
        cluster.load_record("items", "a", {"stock": 5})
        client = cluster.add_client("us-west")
        commit_write(cluster, client, "a", {"stock": 4})

        agent = cluster.add_anti_entropy_agent("us-west")
        report = run_tx(cluster, agent.sweep("items", ["a"]))
        assert report.records_swept == 1
        assert report.replicas_repaired == 0
        assert report.records_with_lag == 0
        assert report.unreachable_replies == 0

    def test_sweep_empty_key_list(self):
        cluster = make_cluster(seed=2)
        agent = cluster.add_anti_entropy_agent("us-west")
        report = run_tx(cluster, agent.sweep("items", []))
        assert report.records_swept == 0

    def test_sweep_repairs_stale_replica_after_outage(self):
        cluster = make_cluster(seed=3)
        cluster.load_record("items", "a", {"stock": 10})
        client = cluster.add_client("us-west")

        cluster.fail_datacenter("us-east")
        commit_write(cluster, client, "a", {"stock": 7})
        cluster.recover_datacenter("us-east")

        # us-east missed the update; it diverges until repaired.
        assert len(check_replica_convergence(cluster, "items", ["a"])) == 1

        agent = cluster.add_anti_entropy_agent("us-west")
        report = run_tx(cluster, agent.sweep("items", ["a"]))
        drain(cluster)
        assert report.records_with_lag == 1
        assert report.replicas_repaired == 1
        assert check_replica_convergence(cluster, "items", ["a"]) == []
        east = cluster.read_committed("items", "a", dc="us-east")
        assert east.value == {"stock": 7}

    def test_sweep_during_outage_reports_unreachable(self):
        cluster = make_cluster(seed=4)
        cluster.load_record("items", "a", {"stock": 10})
        cluster.fail_datacenter("us-east")
        agent = cluster.add_anti_entropy_agent("us-west")
        report = run_tx(cluster, agent.sweep("items", ["a"]))
        assert report.unreachable_replies == 1
        assert report.records_swept == 1

    def test_repair_is_monotone_never_rolls_back(self):
        """A CatchUp carrying an older version must be a no-op."""
        from repro.core.messages import CatchUp
        from repro.core.options import RecordId

        cluster = make_cluster(seed=5)
        cluster.load_record("items", "a", {"stock": 10})
        client = cluster.add_client("us-west")
        commit_write(cluster, client, "a", {"stock": 9})

        record = RecordId("items", "a")
        node = cluster.storage_nodes[cluster.placement.replica_in(record, "us-west")]
        before = node.store.read("items", "a")
        node.handle_catch_up(
            CatchUp(record=record, version=1, value={"stock": 10}, exists=True),
            src_id="whoever",
        )
        after = node.store.read("items", "a")
        assert after.version == before.version
        assert after.value == before.value

    def test_sweep_repairs_multiple_records(self):
        cluster = make_cluster(seed=6)
        keys = [f"k{i}" for i in range(8)]
        for key in keys:
            cluster.load_record("items", key, {"stock": 10})
        client = cluster.add_client("us-west")

        cluster.fail_datacenter("eu-west")
        for key in keys[:5]:
            commit_write(cluster, client, key, {"stock": 3})
        cluster.recover_datacenter("eu-west")

        agent = cluster.add_anti_entropy_agent("us-west")
        report = run_tx(cluster, agent.sweep("items", keys))
        drain(cluster)
        assert report.records_swept == 8
        assert report.records_with_lag == 5
        assert report.replicas_repaired == 5
        assert check_replica_convergence(cluster, "items", keys) == []


class TestPeriodicSweeps:
    def test_periodic_sweep_heals_eventually(self):
        cluster = make_cluster(seed=7)
        cluster.load_record("items", "a", {"stock": 10})
        client = cluster.add_client("us-west")

        agent = cluster.add_anti_entropy_agent("us-west")
        agent.start_periodic("items", ["a"], interval_ms=10_000)

        cluster.fail_datacenter("ap-northeast")
        commit_write(cluster, client, "a", {"stock": 2})
        cluster.recover_datacenter("ap-northeast")
        assert len(check_replica_convergence(cluster, "items", ["a"])) == 1

        drain(cluster, ms=25_000)  # at least one periodic sweep fires
        assert check_replica_convergence(cluster, "items", ["a"]) == []
        agent.stop()

    def test_stop_cancels_future_sweeps(self):
        cluster = make_cluster(seed=8)
        cluster.load_record("items", "a", {"stock": 10})
        agent = cluster.add_anti_entropy_agent("us-west")
        agent.start_periodic("items", ["a"], interval_ms=5_000)
        agent.stop()
        before = cluster.counters.get("antientropy.sweeps")
        drain(cluster, ms=30_000)
        assert cluster.counters.get("antientropy.sweeps") == before

    def test_restart_replaces_previous_schedule(self):
        cluster = make_cluster(seed=9)
        cluster.load_record("items", "a", {"stock": 10})
        agent = cluster.add_anti_entropy_agent("us-west")
        agent.start_periodic("items", ["a"], interval_ms=5_000)
        agent.start_periodic("items", ["a"], interval_ms=50_000)
        drain(cluster, ms=20_000)
        # Only the 50s schedule is live: no sweep within the first 20s.
        assert cluster.counters.get("antientropy.sweeps") == 0

    def test_bad_interval_rejected(self):
        cluster = make_cluster(seed=10)
        agent = cluster.add_anti_entropy_agent("us-west")
        with pytest.raises(ValueError):
            agent.start_periodic("items", ["a"], interval_ms=0)


class TestCatchUpDoubleApply:
    def test_catchup_then_visibility_does_not_double_apply(self):
        """Regression: a CatchUp whose value already folds in delta D must
        mark D executed, or D's late visibility re-applies it (this once
        drove replicas below the stock constraint under hot contention)."""
        from repro.core.messages import CatchUp, Visibility
        from repro.core.options import CommutativeUpdate, Option, RecordId

        cluster = make_cluster(seed=20)
        cluster.load_record("items", "i", {"stock": 5})
        record = RecordId("items", "i")
        node = cluster.storage_nodes[cluster.placement.replica_in(record, "us-west")]
        option = Option(
            txid="t1",
            record=record,
            update=CommutativeUpdate.of(stock=-2),
            writeset=(record,),
        )

        node.handle_catch_up(
            CatchUp(
                record=record,
                version=2,
                value={"stock": 3},  # t1's -2 already folded in
                exists=True,
                applied_ids=(option.option_id,),
            ),
            src_id="master",
        )
        node.handle_visibility(Visibility(option=option, committed=True), "c")
        assert node.store.read("items", "i").value == {"stock": 3}

    def test_stale_catchup_does_not_mark_foreign_ids_applied(self):
        """A replica that is NOT behind must ignore the ids of a stale
        CatchUp: its own value may not contain those effects."""
        from repro.core.messages import CatchUp, Visibility
        from repro.core.options import CommutativeUpdate, Option, RecordId

        cluster = make_cluster(seed=21)
        cluster.load_record("items", "i", {"stock": 10})
        record = RecordId("items", "i")
        node = cluster.storage_nodes[cluster.placement.replica_in(record, "us-west")]
        # Local replica moves ahead on its own.
        node.store.record("items", "i").commit_delta("stock", -1, option_id="t9:x")

        option = Option(
            txid="t2",
            record=record,
            update=CommutativeUpdate.of(stock=-3),
            writeset=(record,),
        )
        node.handle_catch_up(
            CatchUp(
                record=record,
                version=1,  # older than local version 2: no-op
                value={"stock": 7},
                exists=True,
                applied_ids=(option.option_id,),
            ),
            src_id="master",
        )
        # t2's delta is NOT in the local value; its visibility must apply.
        node.handle_visibility(Visibility(option=option, committed=True), "c")
        assert node.store.read("items", "i").value == {"stock": 6}


class TestRepairUnderCommutativeLoad:
    def test_commutative_lag_repaired(self):
        """A replica that missed commutative deltas during an outage is
        brought to the quorum-committed value."""
        cluster = make_cluster(seed=11)
        cluster.load_record("items", "a", {"stock": 100})
        client = cluster.add_client("us-west")

        cluster.fail_datacenter("us-east")
        for _ in range(3):
            tx = cluster.begin(client)
            tx.decrement("items", "a", "stock", 5)
            assert run_tx(cluster, tx.commit()).committed
        drain(cluster)
        cluster.recover_datacenter("us-east")

        agent = cluster.add_anti_entropy_agent("us-west")
        run_tx(cluster, agent.sweep("items", ["a"]))
        drain(cluster)
        east = cluster.read_committed("items", "a", dc="us-east")
        assert east.value["stock"] == 85
        assert check_replica_convergence(cluster, "items", ["a"]) == []

    def test_same_version_divergence_escalates_to_recovery(self):
        """Replicas at the SAME version holding different delta sets.

        Three deltas, each committed while a different replica was dark,
        leave every replica at version 4 with a different value — and no
        replica holds the full set, so version-based catch-up sees nothing
        to do.  The sweep must notice ids applied at a peer but wholly
        unknown locally (the propose itself was lost, nothing is pending)
        and escalate those transactions to the recovery agent, whose
        closing visibility broadcast carries the payloads the dark
        replicas never saw."""
        cluster = make_cluster(
            seed=12, datacenters=("us-west", "us-east", "eu-west")
        )
        cluster.load_record("items", "a", {"stock": 100})
        clients = {dc: cluster.add_client(dc) for dc in
                   ("us-west", "us-east", "eu-west")}

        for dark, origin, amount in (
            ("eu-west", "us-west", 1),
            ("us-west", "us-east", 2),
            ("us-east", "eu-west", 4),
        ):
            cluster.fail_datacenter(dark)
            tx = cluster.begin(clients[origin])
            tx.decrement("items", "a", "stock", amount)
            assert run_tx(cluster, tx.commit()).committed
            drain(cluster)
            cluster.recover_datacenter(dark)

        # Each replica missed a different delta: divergent, yet nobody
        # lags by version, so the old repair paths are all blind to it.
        assert len(check_replica_convergence(cluster, "items", ["a"])) == 1

        agent = cluster.add_anti_entropy_agent("us-west")
        agent.attach_recovery(cluster.add_recovery_agent("us-west"))
        report = run_tx(cluster, agent.sweep("items", ["a"]))
        assert report.recoveries_triggered > 0
        drain(cluster, ms=30_000)
        run_tx(cluster, agent.sweep("items", ["a"]))
        drain(cluster, ms=30_000)

        assert check_replica_convergence(cluster, "items", ["a"]) == []
        for dc in ("us-west", "us-east", "eu-west"):
            assert cluster.read_committed("items", "a", dc=dc).value == {
                "stock": 93
            }
