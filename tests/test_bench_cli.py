"""`repro bench` determinism, the --compare gate and CLI subcommands.

The bench artifact is the committed perf baseline CI gates against:
every simulated-time number must be byte-identical across runs at the
same seed once the machine-dependent ``wallclock`` block is stripped
(CI asserts exactly that).  Tests use a shrunken measurement window —
same code path, a fraction of the wall time.
"""

import copy
import json

import pytest

from repro.bench.perf import (
    BENCH_SCHEMA,
    compare_to_baseline,
    render_bench_json,
    run_bench,
    strip_wallclock,
)
from repro.cli import main

#: full-size params take ~30s/run; this is the same path in ~2s.
SMALL = {
    "clients": 5,
    "items": 60,
    "warmup_ms": 500.0,
    "measure_ms": 1_500.0,
    "partitions_per_table": 1,
}


@pytest.fixture(scope="module")
def payloads():
    return (
        run_bench(seed=3, overrides=SMALL),
        run_bench(seed=3, overrides=SMALL),
    )


def test_bench_is_byte_identical_across_runs_sans_wallclock(payloads):
    first, second = payloads
    assert render_bench_json(strip_wallclock(first)) == render_bench_json(
        strip_wallclock(second)
    )


def test_bench_payload_shape(payloads):
    payload = payloads[0]
    assert payload["schema"] == BENCH_SCHEMA
    assert payload["seed"] == 3
    assert set(payload["results"]) == {"mdcc", "fast", "multi", "repcommit"}
    assert set(payload["wallclock"]) == {"mdcc", "fast", "multi", "repcommit"}
    for result in payload["results"].values():
        assert result["commits"] > 0
        assert result["events"] > 0
        assert result["commits_per_sim_s"] > 0
        assert result["events_per_sim_s"] > 0
        assert result["messages_per_sim_s"] > 0
        messages = result["messages"]
        assert messages["sent"] >= messages["delivered"] > 0
        assert messages["per_type"]
        assert sum(messages["per_type"].values()) == messages["sent"]
        # the per-type breakdown is part of the deterministic view, so
        # its key order must be canonical.
        assert list(messages["per_type"]) == sorted(messages["per_type"])
    for wall in payload["wallclock"].values():
        assert wall["wall_s"] > 0
        assert wall["events_per_wall_s"] > 0


def test_wallclock_is_excluded_from_identity_view(payloads):
    payload = payloads[0]
    assert "wallclock" in payload
    assert "wallclock" not in strip_wallclock(payload)


def test_bench_differs_across_seeds():
    first = run_bench(seed=3, overrides=SMALL)
    second = run_bench(seed=4, overrides=SMALL)
    assert strip_wallclock(first) != strip_wallclock(second)


def test_bench_renders_sorted_and_newline_terminated(payloads):
    rendered = render_bench_json(payloads[0])
    assert rendered.endswith("\n")
    assert rendered == json.dumps(json.loads(rendered), indent=2, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# --compare gate
# ----------------------------------------------------------------------
def test_compare_passes_against_itself(payloads):
    # Neutralize the machine-dependent block: two tiny back-to-back runs
    # can differ >10% in wall time, and that's not what this test gates.
    current = copy.deepcopy(payloads[1])
    current["wallclock"] = copy.deepcopy(payloads[0]["wallclock"])
    assert compare_to_baseline(current, payloads[0]) == []


def test_compare_fails_on_deterministic_drift(payloads):
    baseline = copy.deepcopy(payloads[0])
    baseline["results"]["mdcc"]["commits"] += 1
    failures = compare_to_baseline(payloads[1], baseline)
    assert failures
    assert any("deterministic drift" in f for f in failures)


def test_compare_fails_on_wallclock_regression(payloads):
    baseline = copy.deepcopy(payloads[0])
    current = copy.deepcopy(payloads[1])
    # Anchor on the baseline's wallclock so the *ratio under test* is
    # exact — two real tiny runs differ by unbounded machine noise.
    current["wallclock"] = copy.deepcopy(baseline["wallclock"])
    for wall in current["wallclock"].values():
        wall["events_per_wall_s"] = wall["events_per_wall_s"] * 0.5
    failures = compare_to_baseline(current, baseline)
    assert failures
    assert any("regressed" in f for f in failures)


def test_compare_tolerates_faster_and_slightly_slower(payloads):
    baseline = copy.deepcopy(payloads[0])
    current = copy.deepcopy(payloads[1])
    current["wallclock"] = copy.deepcopy(baseline["wallclock"])
    rates = iter([2.0, 0.95, 1.0, 0.97])
    for wall in current["wallclock"].values():
        wall["events_per_wall_s"] = wall["events_per_wall_s"] * next(rates)
    assert compare_to_baseline(current, baseline) == []


def test_compare_fails_on_schema_mismatch(payloads):
    baseline = copy.deepcopy(payloads[0])
    baseline["schema"] = "bench_sim_core/v1"
    failures = compare_to_baseline(payloads[1], baseline)
    assert failures
    assert any("schema mismatch" in f for f in failures)


def test_bench_cli_writes_artifact_and_gates(tmp_path, capsys):
    out = tmp_path / "BENCH_sim_core.json"
    code = main(
        ["bench", "--seed", "3", "--output", str(out), "--measure-s", "1.0"]
    )
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["schema"] == BENCH_SCHEMA
    assert payload["params"]["measure_ms"] == 1_000.0
    # gate a rerun against the artifact we just wrote: must pass
    rerun = tmp_path / "rerun.json"
    code = main(
        [
            "bench",
            "--seed",
            "3",
            "--output",
            str(rerun),
            "--measure-s",
            "1.0",
            "--compare",
            str(out),
            # wall-clock on a busy test box is noisy at this tiny scale;
            # the determinism half of the gate is the point here.
            "--regression-tolerance",
            "0.95",
        ]
    )
    assert code == 0


def test_bench_cli_compare_exits_nonzero_on_drift(tmp_path, capsys):
    out = tmp_path / "baseline.json"
    assert (
        main(["bench", "--seed", "3", "--output", str(out), "--measure-s", "1.0"])
        == 0
    )
    baseline = json.loads(out.read_text())
    baseline["results"]["mdcc"]["commits"] += 1
    out.write_text(json.dumps(baseline))
    code = main(
        [
            "bench",
            "--seed",
            "3",
            "--output",
            "-",
            "--measure-s",
            "1.0",
            "--compare",
            str(out),
        ]
    )
    assert code == 1


def test_topology_cli_writes_file(tmp_path, capsys):
    out = tmp_path / "topo.json"
    code = main(
        [
            "topology",
            "--out",
            str(out),
            "--datacenters",
            "us-west,us-east,eu-west",
            "--base-port",
            "7900",
            "--items",
            "25",
        ]
    )
    assert code == 0
    spec = json.loads(out.read_text())
    assert spec["datacenters"] == ["us-west", "us-east", "eu-west"]
    assert len(spec["nodes"]) == 3
    assert spec["workload"]["items"] == 25
