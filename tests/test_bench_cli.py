"""`repro bench` determinism and the new CLI subcommands.

The bench artifact is the CI-uploaded perf baseline: every number is
simulated-time derived, so two runs at the same seed must render
byte-identical JSON (CI ``cmp``s them).  Tests use a shrunken
measurement window — same code path, a fraction of the wall time.
"""

import json

import pytest

from repro.bench.perf import BENCH_SCHEMA, render_bench_json, run_bench
from repro.cli import main

#: full-size params take ~30s/run; this is the same path in ~2s.
SMALL = {
    "clients": 5,
    "items": 60,
    "warmup_ms": 500.0,
    "measure_ms": 1_500.0,
    "partitions_per_table": 1,
}


@pytest.fixture(scope="module")
def payloads():
    return (
        render_bench_json(run_bench(seed=3, overrides=SMALL)),
        render_bench_json(run_bench(seed=3, overrides=SMALL)),
    )


def test_bench_is_byte_identical_across_runs(payloads):
    first, second = payloads
    assert first == second


def test_bench_payload_shape(payloads):
    payload = json.loads(payloads[0])
    assert payload["schema"] == BENCH_SCHEMA
    assert payload["seed"] == 3
    assert set(payload["results"]) == {"mdcc", "fast", "multi"}
    for result in payload["results"].values():
        assert result["commits"] > 0
        assert result["events"] > 0
        assert result["commits_per_sim_s"] > 0
        assert result["events_per_sim_s"] > 0


def test_bench_differs_across_seeds():
    first = render_bench_json(run_bench(seed=3, overrides=SMALL))
    second = render_bench_json(run_bench(seed=4, overrides=SMALL))
    assert first != second


def test_bench_renders_sorted_and_newline_terminated(payloads):
    payload = payloads[0]
    assert payload.endswith("\n")
    assert payload == json.dumps(json.loads(payload), indent=2, sort_keys=True) + "\n"


def test_bench_cli_writes_artifact(tmp_path, capsys):
    out = tmp_path / "BENCH_sim_core.json"
    code = main(
        ["bench", "--seed", "3", "--output", str(out), "--measure-s", "1.0"]
    )
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["schema"] == BENCH_SCHEMA
    assert payload["params"]["measure_ms"] == 1_000.0


def test_topology_cli_writes_file(tmp_path, capsys):
    out = tmp_path / "topo.json"
    code = main(
        [
            "topology",
            "--out",
            str(out),
            "--datacenters",
            "us-west,us-east,eu-west",
            "--base-port",
            "7900",
            "--items",
            "25",
        ]
    )
    assert code == 0
    spec = json.loads(out.read_text())
    assert spec["datacenters"] == ["us-west", "us-east", "eu-west"]
    assert len(spec["nodes"]) == 3
    assert spec["workload"]["items"] == 25
