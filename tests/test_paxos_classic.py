"""Integration tests for standalone Classic Paxos over the simulated WAN."""

from repro.paxos.classic import ClassicAcceptor, ClassicProposer
from repro.sim.core import Simulator
from repro.sim.network import EC2_REGIONS, LatencyModel, Network
from repro.sim.rng import RngRegistry


def build_group(seed=1, n=5, jitter=0.0):
    sim = Simulator()
    registry = RngRegistry(seed=seed)
    model = LatencyModel(jitter_sigma=jitter, rng_registry=registry)
    network = Network(sim, latency_model=model, rng_registry=registry)
    acceptors = [
        ClassicAcceptor(sim, network, f"acc-{i}", EC2_REGIONS[i % len(EC2_REGIONS)])
        for i in range(n)
    ]
    return sim, network, acceptors


class TestSingleProposer:
    def test_value_chosen(self):
        sim, network, acceptors = build_group()
        proposer = ClassicProposer(
            sim, network, "prop", "us-west", [a.node_id for a in acceptors]
        )
        decision = proposer.propose("v1")
        result = sim.run_until(decision, limit=10_000)
        assert result == "v1"

    def test_two_round_trips_latency(self):
        # Classic Paxos needs Phase 1 + Phase 2: two round trips to a
        # classic quorum (the 3rd-nearest DC from us-west is ap-northeast).
        sim, network, acceptors = build_group()
        proposer = ClassicProposer(
            sim, network, "prop", "us-west", [a.node_id for a in acceptors]
        )
        decision = proposer.propose("v1")
        sim.run_until(decision, limit=10_000)
        # 2 RTTs of 120ms (+ 4 hops of 0.5ms overhead) ≈ 242ms.
        assert 200 <= sim.now <= 300

    def test_acceptors_converge_on_value(self):
        sim, network, acceptors = build_group()
        proposer = ClassicProposer(
            sim, network, "prop", "us-west", [a.node_id for a in acceptors]
        )
        sim.run_until(proposer.propose("v1"), limit=10_000)
        sim.run()  # drain in-flight messages
        accepted = [a.accepted_value for a in acceptors if a.accepted_value]
        assert len(accepted) == 5
        assert set(accepted) == {"v1"}

    def test_survives_minority_failure(self):
        sim, network, acceptors = build_group()
        network.fail_datacenter(acceptors[3].dc)  # one DC down
        proposer = ClassicProposer(
            sim, network, "prop", "us-west", [a.node_id for a in acceptors]
        )
        decision = proposer.propose("v1")
        assert sim.run_until(decision, limit=10_000) == "v1"

    def test_blocks_without_quorum(self):
        sim, network, acceptors = build_group()
        for acceptor in acceptors[2:]:
            network.fail_datacenter(acceptor.dc)
        proposer = ClassicProposer(
            sim, network, "prop", "us-west", [a.node_id for a in acceptors]
        )
        decision = proposer.propose("v1")
        sim.run(until=5_000)
        assert not decision.done

    def test_message_loss_retried(self):
        sim, network, acceptors = build_group(seed=5)
        network.set_drop_rate(0.2)
        proposer = ClassicProposer(
            sim, network, "prop", "us-west", [a.node_id for a in acceptors]
        )
        decision = proposer.propose("v1")
        assert sim.run_until(decision, limit=120_000) == "v1"


class TestCompetingProposers:
    def test_both_learn_same_value(self):
        sim, network, acceptors = build_group()
        ids = [a.node_id for a in acceptors]
        p1 = ClassicProposer(sim, network, "p1", "us-west", ids)
        p2 = ClassicProposer(sim, network, "p2", "eu-west", ids)
        d1 = p1.propose("west-value")
        d2 = p2.propose("europe-value")
        r1 = sim.run_until(d1, limit=60_000)
        r2 = sim.run_until(d2, limit=60_000)
        assert r1 == r2
        assert r1 in ("west-value", "europe-value")

    def test_chosen_value_stable_across_later_proposals(self):
        # Once chosen, a later proposer must learn the chosen value, not
        # overwrite it.
        sim, network, acceptors = build_group()
        ids = [a.node_id for a in acceptors]
        p1 = ClassicProposer(sim, network, "p1", "us-west", ids)
        first = sim.run_until(p1.propose("first"), limit=10_000)
        p2 = ClassicProposer(sim, network, "p2", "ap-southeast", ids)
        second = sim.run_until(p2.propose("second"), limit=60_000)
        assert first == "first"
        assert second == "first"

    def test_many_competing_proposers_agree(self):
        sim, network, acceptors = build_group(seed=9, jitter=0.1)
        ids = [a.node_id for a in acceptors]
        proposers = [
            ClassicProposer(sim, network, f"p{i}", EC2_REGIONS[i], ids)
            for i in range(5)
        ]
        decisions = [p.propose(f"value-{i}") for i, p in enumerate(proposers)]
        results = {sim.run_until(d, limit=300_000) for d in decisions}
        assert len(results) == 1
