"""The static analyzer analyzing itself: rules, suppressions, ratchet.

Three layers:

* per-rule fixture files (in-memory :class:`SourceFile` trees laid out
  like ``src/repro``) with known violations and known-clean twins;
* the suppression syntax and the baseline ratchet semantics (new finding
  fails, grandfathered passes, fixed finding must leave the baseline);
* end-to-end: ``repro analyze`` on a copy of the real tree exits 0, and
  re-introducing the PR 3 waiter-set iteration defect makes it exit 1
  with DET-set-iter pointing at the exact line.
"""

import json
import pathlib
import shutil
import textwrap

from repro.analysis.engine import (
    Baseline,
    Finding,
    Project,
    SourceFile,
    all_rules,
    analyze_project,
    render_json,
)
from repro.analysis.rules_determinism import DET_SET_ITER, DET_WALLCLOCK
from repro.analysis.rules_handlers import HANDLER_EXHAUSTIVE
from repro.cli import main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def _src(text):
    return textwrap.dedent(text)


def _project(*files):
    return Project(REPO_ROOT, files=list(files))


def _run(rule, *files):
    return sorted(rule.check(_project(*files)))


# ----------------------------------------------------------------------
# DET-set-iter
# ----------------------------------------------------------------------
def test_set_iter_flags_for_loop_over_set():
    file = SourceFile(
        "src/repro/core/rogue.py",
        _src(
            """\
            def f():
                waiters = {"a", "b"}
                for waiter in waiters:
                    print(waiter)
            """
        ),
    )
    findings = _run(DET_SET_ITER, file)
    assert len(findings) == 1
    assert findings[0].line == 3
    assert "waiters" in findings[0].message


def test_set_iter_accepts_sorted_wrap_and_flags_tuple_materialization():
    file = SourceFile(
        "src/repro/core/rogue.py",
        _src(
            """\
            def f(pending: set) -> tuple:
                for item in sorted(pending):
                    print(item)
                return tuple(pending)
            """
        ),
    )
    findings = _run(DET_SET_ITER, file)
    assert [f.line for f in findings] == [4]


def test_set_iter_sees_cross_module_attribute_types():
    state = SourceFile(
        "src/repro/storage/rogue_state.py",
        "class S:\n    def __init__(self):\n        self.applied_ids = set()\n",
    )
    user = SourceFile(
        "src/repro/core/rogue_user.py",
        _src(
            """\
            def f(state):
                return tuple(state.applied_ids)
            """
        ),
    )
    findings = _run(DET_SET_ITER, state, user)
    assert [(f.path, f.line) for f in findings] == [("src/repro/core/rogue_user.py", 2)]


def test_set_iter_exempts_order_insensitive_consumers():
    file = SourceFile(
        "src/repro/core/rogue.py",
        _src(
            """\
            def f(pending: set):
                total = sum(x.cost for x in pending)
                biggest = max(pending)
                count = len(pending)
                twin = set(pending)
                return total, biggest, count, twin
            """
        ),
    )
    assert _run(DET_SET_ITER, file) == []


def test_set_iter_flags_dict_comprehension_over_set():
    file = SourceFile(
        "src/repro/protocols/rogue.py",
        "def f(records: set):\n    return {str(r): 1 for r in records}\n",
    )
    findings = _run(DET_SET_ITER, file)
    assert [f.line for f in findings] == [2]


def test_set_iter_ignores_wallclock_runtime_files():
    file = SourceFile(
        "src/repro/transport/tcp.py",
        "def f(conns: set):\n    for c in conns:\n        c.close()\n",
    )
    assert _run(DET_SET_ITER, file) == []


# ----------------------------------------------------------------------
# DET-wallclock
# ----------------------------------------------------------------------
def test_wallclock_flags_time_and_uuid_and_module_random():
    file = SourceFile(
        "src/repro/core/rogue.py",
        _src(
            """\
            import random
            import time
            import uuid

            def f():
                return time.time(), uuid.uuid4(), random.random()
            """
        ),
    )
    findings = _run(DET_WALLCLOCK, file)
    assert {f.message.split()[0] for f in findings} == {
        "time.time",
        "uuid.uuid4",
        "random.random",
    }
    assert all(f.line == 6 for f in findings)


def test_wallclock_allows_seeded_random_instances():
    file = SourceFile(
        "src/repro/core/rogue.py",
        _src(
            """\
            import random

            def f(seed: int):
                rng = random.Random(seed)
                return rng.random()
            """
        ),
    )
    assert _run(DET_WALLCLOCK, file) == []


def test_wallclock_resolves_from_imports_and_aliases():
    file = SourceFile(
        "src/repro/reconfig/rogue.py",
        _src(
            """\
            import time as t
            from datetime import datetime

            def f():
                return t.monotonic(), datetime.now()
            """
        ),
    )
    findings = _run(DET_WALLCLOCK, file)
    assert {f.message.split()[0] for f in findings} == {
        "time.monotonic",
        "datetime.datetime.now",
    }


# ----------------------------------------------------------------------
# HANDLER-exhaustive
# ----------------------------------------------------------------------
def test_handler_rule_flags_sent_message_without_handler():
    file = SourceFile(
        "src/repro/protocols/rogue.py",
        _src(
            """\
            from dataclasses import dataclass

            @dataclass(frozen=True, slots=True)
            class RogueProbe:
                txid: str

            class RogueNode:
                def poke(self):
                    self.send("peer", RogueProbe(txid="t"))
            """
        ),
    )
    findings = _run(HANDLER_EXHAUSTIVE, file)
    assert len(findings) == 1
    assert findings[0].line == 4
    assert "handle_rogue_probe" in findings[0].message


def test_handler_rule_flags_dead_handler():
    file = SourceFile(
        "src/repro/core/rogue.py",
        _src(
            """\
            class RogueNode:
                def handle_never_sent_thing(self, message, src_id):
                    pass
            """
        ),
    )
    findings = _run(HANDLER_EXHAUSTIVE, file)
    assert len(findings) == 1
    assert findings[0].line == 2
    assert "dead handler" in findings[0].message


def test_handler_rule_clean_when_paired():
    file = SourceFile(
        "src/repro/protocols/rogue.py",
        _src(
            """\
            from dataclasses import dataclass

            @dataclass(frozen=True, slots=True)
            class RogueProbe:
                txid: str

            class RogueNode:
                def poke(self):
                    self.send("peer", RogueProbe(txid="t"))

                def handle_rogue_probe(self, message, src_id):
                    pass
            """
        ),
    )
    assert _run(HANDLER_EXHAUSTIVE, file) == []


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def test_noqa_suppresses_named_rule_on_that_line():
    file = SourceFile(
        "src/repro/core/rogue.py",
        _src(
            """\
            def f(pending: set):
                for item in pending:  # repro: noqa DET-set-iter(order provably irrelevant here)
                    item.clear()
            """
        ),
    )
    assert analyze_project(_project(file), rules=[DET_SET_ITER]) == []


def test_noqa_does_not_suppress_other_rules():
    """A suppression names one rule; a different rule firing on the same
    line is unaffected."""
    file = SourceFile(
        "src/repro/core/rogue.py",
        _src(
            """\
            def f(pending: set):
                for item in pending:  # repro: noqa DET-wallclock(wrong rule id)
                    item.clear()
            """
        ),
    )
    findings = analyze_project(_project(file), rules=[DET_SET_ITER, DET_WALLCLOCK])
    assert [f.rule for f in findings] == ["DET-set-iter"]
    assert findings[0].line == 2


def test_malformed_noqa_is_flagged_and_unsuppressible():
    file = SourceFile(
        "src/repro/core/rogue.py",
        "x = 1  # repro: noqa\n",
    )
    findings = analyze_project(_project(file))
    assert [f.rule for f in findings] == ["NOQA-malformed"]


def test_docstring_mention_of_noqa_is_not_a_suppression():
    file = SourceFile(
        "src/repro/core/rogue.py",
        '"""Docs: write `# repro: noqa` to suppress."""\nx = 1\n',
    )
    assert analyze_project(_project(file)) == []


# ----------------------------------------------------------------------
# Baseline ratchet
# ----------------------------------------------------------------------
_DEFECT = _src(
    """\
    def f(pending: set):
        for item in pending:
            item.clear()
    """
)


def test_baseline_grandfathers_known_finding():
    file = SourceFile("src/repro/core/rogue.py", _DEFECT)
    project = _project(file)
    findings = analyze_project(project, rules=[DET_SET_ITER])
    assert len(findings) == 1
    baseline = Baseline.from_findings(project, findings)
    new, grandfathered, stale = baseline.apply(project, findings)
    assert (len(new), len(grandfathered), len(stale)) == (0, 1, 0)


def test_baseline_survives_line_drift():
    file = SourceFile("src/repro/core/rogue.py", _DEFECT)
    project = _project(file)
    baseline = Baseline.from_findings(
        project, analyze_project(project, rules=[DET_SET_ITER])
    )
    drifted = SourceFile("src/repro/core/rogue.py", "import os\n\n\n" + _DEFECT)
    drifted_project = _project(drifted)
    findings = analyze_project(drifted_project, rules=[DET_SET_ITER])
    new, grandfathered, stale = baseline.apply(drifted_project, findings)
    assert (len(new), len(grandfathered), len(stale)) == (0, 1, 0)


def test_new_finding_is_not_grandfathered():
    file = SourceFile("src/repro/core/rogue.py", _DEFECT)
    project = _project(file)
    baseline = Baseline.from_findings(
        project, analyze_project(project, rules=[DET_SET_ITER])
    )
    grown = SourceFile(
        "src/repro/core/rogue.py",
        _DEFECT + "\ndef g(other: set):\n    for x in other:\n        x.poke()\n",
    )
    grown_project = _project(grown)
    findings = analyze_project(grown_project, rules=[DET_SET_ITER])
    new, grandfathered, stale = baseline.apply(grown_project, findings)
    assert (len(new), len(grandfathered), len(stale)) == (1, 1, 0)
    assert "other" in new[0].message


def test_fixed_finding_makes_baseline_entry_stale():
    file = SourceFile("src/repro/core/rogue.py", _DEFECT)
    project = _project(file)
    baseline = Baseline.from_findings(
        project, analyze_project(project, rules=[DET_SET_ITER])
    )
    fixed = SourceFile(
        "src/repro/core/rogue.py",
        _DEFECT.replace("in pending:", "in sorted(pending):"),
    )
    fixed_project = _project(fixed)
    findings = analyze_project(fixed_project, rules=[DET_SET_ITER])
    new, grandfathered, stale = baseline.apply(fixed_project, findings)
    assert (len(new), len(grandfathered), len(stale)) == (0, 0, 1)
    assert stale[0]["rule"] == "DET-set-iter"


def test_baseline_round_trips_through_file(tmp_path):
    file = SourceFile("src/repro/core/rogue.py", _DEFECT)
    project = _project(file)
    baseline = Baseline.from_findings(
        project, analyze_project(project, rules=[DET_SET_ITER])
    )
    path = tmp_path / "baseline.json"
    path.write_text(baseline.render(), encoding="utf-8")
    loaded = Baseline.load(path)
    assert loaded.entries == baseline.entries


# ----------------------------------------------------------------------
# Engine plumbing
# ----------------------------------------------------------------------
def test_rule_registry_is_id_sorted_and_complete():
    rules = all_rules()
    ids = [rule.id for rule in rules]
    assert ids == sorted(ids)
    assert set(ids) == {
        "DET-set-iter",
        "DET-wallclock",
        "HANDLER-exhaustive",
        "ISO-sim-free",
        "NOQA-malformed",
        "WIRE-codec",
    }
    for rule in rules:
        assert rule.severity == "error"
        assert rule.autofix_hint


def test_json_output_is_deterministic():
    file = SourceFile("src/repro/core/rogue.py", _DEFECT)
    project = _project(file)
    findings = analyze_project(project, rules=[DET_SET_ITER])
    first = render_json(project, findings)
    second = render_json(project, findings)
    assert first == second
    payload = json.loads(first)
    assert payload["summary"]["new"] == 1
    assert payload["findings"][0]["rule"] == "DET-set-iter"
    assert payload["findings"][0]["fingerprint"]


def test_findings_sort_stably():
    a = Finding(path="a.py", line=2, col=1, rule="R-x", message="m")
    b = Finding(path="a.py", line=1, col=1, rule="R-x", message="m")
    assert sorted([a, b]) == [b, a]


# ----------------------------------------------------------------------
# End to end: the real tree, and the PR 3 defect re-introduced
# ----------------------------------------------------------------------
def _copy_tree(tmp_path):
    root = tmp_path / "repo"
    shutil.copytree(REPO_ROOT / "src" / "repro", root / "src" / "repro")
    return root


def test_analyze_cli_clean_on_real_tree(tmp_path, capsys):
    root = _copy_tree(tmp_path)
    exit_code = main(["analyze", "--root", str(root), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 0
    assert payload["summary"]["new"] == 0
    assert payload["summary"]["stale_baseline"] == 0


def test_reintroducing_pr3_waiter_defect_fails_at_exact_line(tmp_path, capsys):
    """The acceptance criterion: unsorting the waiter-set walk in
    master.py (the PR 3 defect) must exit 1 with DET-set-iter at the
    exact line of the unsorted iteration."""
    root = _copy_tree(tmp_path)
    master = root / "src" / "repro" / "core" / "master.py"
    source = master.read_text(encoding="utf-8")
    defective = source.replace("for waiter in sorted(waiters):", "for waiter in waiters:")
    assert defective != source, "master.py no longer matches the expected walk"
    master.write_text(defective, encoding="utf-8")
    defect_line = next(
        lineno
        for lineno, text in enumerate(defective.splitlines(), start=1)
        if text.strip() == "for waiter in waiters:"
    )

    exit_code = main(["analyze", "--root", str(root), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 1
    hits = [f for f in payload["findings"] if f["rule"] == "DET-set-iter"]
    assert [(f["path"], f["line"]) for f in hits] == [
        ("src/repro/core/master.py", defect_line)
    ]


def test_write_baseline_then_clean_exit(tmp_path, capsys):
    root = _copy_tree(tmp_path)
    master = root / "src" / "repro" / "core" / "master.py"
    source = master.read_text(encoding="utf-8")
    master.write_text(
        source.replace("for waiter in sorted(waiters):", "for waiter in waiters:"),
        encoding="utf-8",
    )
    assert main(["analyze", "--root", str(root), "--write-baseline"]) == 0
    capsys.readouterr()
    # grandfathered now: reported, but exit 0
    assert main(["analyze", "--root", str(root)]) == 0
    out = capsys.readouterr().out
    assert "[baseline]" in out
    # fixing the defect strands the baseline entry -> exit 1 until removed
    master.write_text(source, encoding="utf-8")
    assert main(["analyze", "--root", str(root)]) == 1
    assert "stale" in capsys.readouterr().out
