"""Unit tests for the WAN network model and failure injection."""

import pytest

from repro.sim.core import SimulationError, Simulator
from repro.sim.network import (
    DEFAULT_RTT_MATRIX,
    EC2_REGIONS,
    LatencyModel,
    LinkPolicy,
    Network,
)
from repro.sim.node import Node
from repro.sim.rng import RngRegistry


class Recorder(Node):
    """Test node that logs every delivery with its arrival time."""

    def __init__(self, sim, network, node_id, dc):
        super().__init__(sim, network, node_id, dc)
        self.received = []

    def on_message(self, message, src_id):
        self.received.append((self.sim.now, message, src_id))


def build(seed=7, jitter=0.0):
    sim = Simulator()
    registry = RngRegistry(seed=seed)
    model = LatencyModel(jitter_sigma=jitter, rng_registry=registry)
    network = Network(sim, latency_model=model, rng_registry=registry)
    return sim, network


class TestLatencyModel:
    def test_matrix_covers_all_region_pairs(self):
        for i, a in enumerate(EC2_REGIONS):
            for b in EC2_REGIONS[i + 1:]:
                assert frozenset((a, b)) in DEFAULT_RTT_MATRIX

    def test_intra_dc_rtt_is_small(self):
        model = LatencyModel()
        assert model.base_rtt("us-west", "us-west") == pytest.approx(1.0)

    def test_symmetric_rtt(self):
        model = LatencyModel()
        assert model.base_rtt("us-west", "eu-west") == model.base_rtt(
            "eu-west", "us-west"
        )

    def test_unknown_pair_raises(self):
        model = LatencyModel()
        with pytest.raises(SimulationError):
            model.base_rtt("us-west", "mars")

    def test_one_way_is_half_rtt_plus_overhead_without_jitter(self):
        model = LatencyModel(jitter_sigma=0.0, processing_overhead=0.5)
        sample = model.one_way("us-west", "us-east")
        assert sample == pytest.approx(80.0 / 2 + 0.5)

    def test_jitter_varies_samples_deterministically(self):
        a = LatencyModel(jitter_sigma=0.2, rng_registry=RngRegistry(seed=3))
        b = LatencyModel(jitter_sigma=0.2, rng_registry=RngRegistry(seed=3))
        seq_a = [a.one_way("us-west", "eu-west") for _ in range(10)]
        seq_b = [b.one_way("us-west", "eu-west") for _ in range(10)]
        assert seq_a == seq_b
        assert len(set(seq_a)) > 1

    def test_sorted_rtts_orders_by_distance(self):
        model = LatencyModel()
        ordered = model.sorted_rtts_from("us-west")
        distances = [rtt for _, rtt in ordered]
        assert distances == sorted(distances)
        assert ordered[0][0] == "us-east"  # nearest to us-west in matrix

    def test_fourth_closest_is_farther_than_third(self):
        # The QW-3 vs QW-4 gap in Figure 3 relies on this property.
        model = LatencyModel()
        for region in EC2_REGIONS:
            ordered = model.sorted_rtts_from(region)
            assert ordered[3][1] > ordered[2][1]


class TestDelivery:
    def test_message_arrives_after_one_way_latency(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        b = Recorder(sim, network, "b", "us-east")
        a.send("b", "hello")
        sim.run()
        assert len(b.received) == 1
        arrival, message, src = b.received[0]
        assert message == "hello"
        assert src == "a"
        assert arrival == pytest.approx(40.5)  # 80/2 + 0.5 overhead

    def test_intra_dc_delivery_fast(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        b = Recorder(sim, network, "b", "us-west")
        a.send("b", "ping")
        sim.run()
        assert b.received[0][0] == pytest.approx(1.0)  # 1/2 + 0.5

    def test_broadcast_reaches_all(self):
        sim, network = build()
        src = Recorder(sim, network, "src", "us-west")
        sinks = [
            Recorder(sim, network, f"n{i}", dc)
            for i, dc in enumerate(EC2_REGIONS)
        ]
        count = src.broadcast([s.node_id for s in sinks], "msg")
        sim.run()
        assert count == 5
        assert all(len(s.received) == 1 for s in sinks)

    def test_duplicate_node_id_rejected(self):
        sim, network = build()
        Recorder(sim, network, "dup", "us-west")
        with pytest.raises(SimulationError):
            Recorder(sim, network, "dup", "us-east")

    def test_unknown_destination_counts_as_drop(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        a.send("ghost", "lost")
        sim.run()
        assert network.stats.messages_dropped == 1

    def test_stats_track_sent_and_delivered(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        Recorder(sim, network, "b", "us-east")
        for _ in range(3):
            a.send("b", "x")
        sim.run()
        assert network.stats.messages_sent == 3
        assert network.stats.messages_delivered == 3
        assert network.stats.per_type["str"] == 3


class TestFailureInjection:
    def test_failed_dc_receives_nothing(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        b = Recorder(sim, network, "b", "us-east")
        network.fail_datacenter("us-east")
        a.send("b", "lost")
        sim.run()
        assert b.received == []
        assert network.stats.messages_dropped == 1

    def test_failed_dc_sends_nothing(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-east")
        b = Recorder(sim, network, "b", "us-west")
        network.fail_datacenter("us-east")
        a.send("b", "lost")
        sim.run()
        assert b.received == []

    def test_in_flight_message_lost_when_dc_fails(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        b = Recorder(sim, network, "b", "us-east")
        a.send("b", "in-flight")
        sim.schedule(10.0, network.fail_datacenter, "us-east")
        sim.run()
        assert b.received == []

    def test_recovery_restores_traffic(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        b = Recorder(sim, network, "b", "us-east")
        network.fail_datacenter("us-east")
        network.recover_datacenter("us-east")
        a.send("b", "back")
        sim.run()
        assert len(b.received) == 1

    def test_partition_blocks_both_directions(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        b = Recorder(sim, network, "b", "eu-west")
        network.partition("us-west", "eu-west")
        a.send("b", "x")
        b.send("a", "y")
        sim.run()
        assert a.received == [] and b.received == []
        network.heal_partition("us-west", "eu-west")
        a.send("b", "x2")
        sim.run()
        assert len(b.received) == 1

    def test_partition_leaves_other_links_up(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        c = Recorder(sim, network, "c", "ap-northeast")
        network.partition("us-west", "eu-west")
        a.send("c", "ok")
        sim.run()
        assert len(c.received) == 1

    def test_drop_rate_loses_messages(self):
        sim, network = build(seed=11)
        a = Recorder(sim, network, "a", "us-west")
        b = Recorder(sim, network, "b", "us-east")
        network.set_drop_rate(0.5)
        for _ in range(200):
            a.send("b", "maybe")
        sim.run()
        assert 0 < len(b.received) < 200
        assert network.stats.messages_dropped == 200 - len(b.received)

    def test_invalid_drop_rate_rejected(self):
        sim, network = build()
        with pytest.raises(SimulationError):
            network.set_drop_rate(1.5)

    def test_drop_reasons_distinguish_failure_from_partition(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        Recorder(sim, network, "b", "us-east")
        Recorder(sim, network, "c", "eu-west")
        network.fail_datacenter("us-east")
        network.partition("us-west", "eu-west")
        a.send("b", "x")
        a.send("c", "y")
        a.send("ghost", "z")
        sim.run()
        assert network.stats.dropped_by_reason == {
            "dc-failure": 1,
            "partition": 1,
            "unknown-destination": 1,
        }
        assert network.stats.messages_dropped == 3

    def test_fail_datacenter_idempotent_with_inflight_timer(self):
        """A scheduled (duplicate) failure racing recovery must not wedge
        state or double-count: fail/fail/recover leaves the DC healthy."""
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        b = Recorder(sim, network, "b", "us-east")
        events = []
        network.subscribe(lambda now, event, details: events.append(event))
        network.fail_datacenter("us-east")
        sim.schedule(10.0, network.fail_datacenter, "us-east")  # stale timer
        sim.schedule(20.0, network.recover_datacenter, "us-east")
        sim.run()
        a.send("b", "after")
        sim.run()
        assert len(b.received) == 1
        # The duplicate failure produced no transition event.
        assert events == ["dc-failed", "dc-recovered"]

    def test_recover_unfailed_dc_is_noop(self):
        sim, network = build()
        events = []
        network.subscribe(lambda now, event, details: events.append(event))
        network.recover_datacenter("us-east")
        assert events == []


class TestNodeFailure:
    def test_failed_node_traffic_drops_both_ways(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        b = Recorder(sim, network, "b", "us-west")
        network.fail_node("b")
        a.send("b", "x")
        b.send("a", "y")
        sim.run()
        assert a.received == [] and b.received == []
        assert network.stats.dropped_by_reason["node-failure"] == 2

    def test_other_nodes_in_same_dc_unaffected(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        Recorder(sim, network, "b", "us-east")
        c = Recorder(sim, network, "c", "us-east")
        network.fail_node("b")
        a.send("c", "ok")
        sim.run()
        assert len(c.received) == 1

    def test_in_flight_message_lost_when_node_fails(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        b = Recorder(sim, network, "b", "us-east")
        a.send("b", "in-flight")
        sim.schedule(10.0, network.fail_node, "b")
        sim.run()
        assert b.received == []
        network.recover_node("b")
        a.send("b", "back")
        sim.run()
        assert len(b.received) == 1


class TestPartitionGroups:
    def test_nway_split_blocks_cross_group_traffic(self):
        sim, network = build()
        nodes = {
            dc: Recorder(sim, network, f"n-{dc}", dc) for dc in EC2_REGIONS
        }
        network.partition_groups(
            [["us-west", "us-east"], ["eu-west", "ap-southeast", "ap-northeast"]]
        )
        nodes["us-west"].send("n-us-east", "same-group")
        nodes["us-west"].send("n-eu-west", "cross-group")
        nodes["eu-west"].send("n-ap-southeast", "same-group-2")
        sim.run()
        assert len(nodes["us-east"].received) == 1
        assert nodes["eu-west"].received == []
        assert len(nodes["ap-southeast"].received) == 1
        assert network.stats.dropped_by_reason["partition"] == 1

    def test_unlisted_dcs_form_remainder_group(self):
        sim, network = build()
        nodes = {
            dc: Recorder(sim, network, f"n-{dc}", dc) for dc in EC2_REGIONS
        }
        network.partition_groups([["eu-west"]])
        nodes["us-west"].send("n-us-east", "remainder-internal")
        nodes["us-west"].send("n-eu-west", "to-isolated")
        sim.run()
        assert len(nodes["us-east"].received) == 1
        assert nodes["eu-west"].received == []

    def test_clear_restores_traffic(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        b = Recorder(sim, network, "b", "eu-west")
        network.partition_groups([["us-west"], ["eu-west"]])
        network.clear_partition_groups()
        a.send("b", "x")
        sim.run()
        assert len(b.received) == 1

    def test_duplicate_dc_across_groups_rejected(self):
        sim, network = build()
        with pytest.raises(SimulationError):
            network.partition_groups([["us-west"], ["us-west", "eu-west"]])

    def test_intra_dc_traffic_survives_any_split(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        b = Recorder(sim, network, "b", "us-west")
        network.partition_groups([["us-west"], ["us-east"]])
        a.send("b", "local")
        sim.run()
        assert len(b.received) == 1


class TestLinkPolicy:
    def test_extra_latency_applies_both_directions(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        b = Recorder(sim, network, "b", "us-east")
        network.set_link_policy(
            "us-east", "us-west", LinkPolicy(extra_latency_ms=100.0)
        )
        a.send("b", "slow")
        sim.run()
        assert b.received[0][0] == pytest.approx(140.5)  # 40.5 base + 100

    def test_full_drop_rate_severs_link(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        b = Recorder(sim, network, "b", "us-east")
        network.set_link_policy("us-west", "us-east", LinkPolicy(drop_rate=1.0))
        for _ in range(5):
            a.send("b", "x")
        sim.run()
        assert b.received == []
        assert network.stats.dropped_by_reason["link-policy"] == 5
        network.clear_link_policy("us-west", "us-east")
        a.send("b", "back")
        sim.run()
        assert len(b.received) == 1

    def test_partial_loss_is_deterministic_per_seed(self):
        def run_once():
            sim, network = build(seed=5)
            a = Recorder(sim, network, "a", "us-west")
            b = Recorder(sim, network, "b", "us-east")
            network.set_link_policy(
                "us-west", "us-east", LinkPolicy(drop_rate=0.5)
            )
            for _ in range(100):
                a.send("b", "maybe")
            sim.run()
            return len(b.received)

        first, second = run_once(), run_once()
        assert first == second
        assert 0 < first < 100

    def test_policy_leaves_other_links_clean(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        c = Recorder(sim, network, "c", "eu-west")
        network.set_link_policy("us-west", "us-east", LinkPolicy(drop_rate=1.0))
        a.send("c", "fine")
        sim.run()
        assert len(c.received) == 1

    def test_invalid_policy_rejected(self):
        with pytest.raises(SimulationError):
            LinkPolicy(drop_rate=1.5)
        with pytest.raises(SimulationError):
            LinkPolicy(extra_latency_ms=-1.0)


class TestEventHookAndHealAll:
    def test_subscribers_see_every_effective_transition(self):
        sim, network = build()
        events = []
        network.subscribe(lambda now, event, details: events.append((event, details)))
        network.fail_datacenter("us-east")
        network.partition("us-west", "eu-west")
        network.set_link_policy("us-west", "us-east", LinkPolicy(drop_rate=0.5))
        network.partition_groups([["eu-west"]])
        network.fail_node("some-node")
        assert [e for e, _ in events] == [
            "dc-failed",
            "partitioned",
            "link-degraded",
            "partition-groups",
            "node-failed",
        ]
        assert events[1][1]["pair"] == ("eu-west", "us-west")

    def test_heal_all_lifts_every_fault_and_notifies(self):
        sim, network = build()
        network.fail_datacenter("us-east")
        network.fail_node("n1")
        network.partition("us-west", "eu-west")
        network.partition_groups([["eu-west"]])
        network.set_link_policy("us-west", "us-east", LinkPolicy(drop_rate=1.0))
        network.set_drop_rate(0.2)
        network.heal_all()
        assert network.active_faults() == {
            "failed_dcs": [],
            "failed_nodes": [],
            "partitions": [],
            "groups": None,
            "degraded_links": [],
            "drop_rate": 0.0,
        }


class TestNodeDispatch:
    def test_handler_lookup_by_message_type(self):
        sim, network = build()

        class Ping:
            pass

        class PongNode(Node):
            def __init__(self, *args):
                super().__init__(*args)
                self.pings = 0

            def handle_ping(self, message, src_id):
                self.pings += 1

        a = Recorder(sim, network, "a", "us-west")
        b = PongNode(sim, network, "b", "us-west")
        a.send("b", Ping())
        sim.run()
        assert b.pings == 1

    def test_missing_handler_raises(self):
        sim, network = build()

        class Strange:
            pass

        class Deaf(Node):
            pass

        a = Recorder(sim, network, "a", "us-west")
        Deaf(sim, network, "deaf", "us-west")
        a.send("deaf", Strange())
        with pytest.raises(NotImplementedError):
            sim.run()

    def test_timer_fires(self):
        sim, network = build()
        node = Recorder(sim, network, "n", "us-west")
        fired = []
        node.set_timer(15.0, fired.append, "t")
        sim.run()
        assert fired == ["t"]
        assert sim.now == 15.0


class TestRuntimeRegistration:
    """Runtime joins: late registrants must inherit active fault state.

    Fault state is keyed by DC name and node id — never by
    registration-time snapshots — so a node that registers mid-outage,
    mid-partition or mid-degradation is subject to the fault from its
    first message.  These tests pin that contract for the elastic
    membership machinery.
    """

    def test_late_registrant_inherits_dc_failure(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        network.fail_datacenter("us-east")
        b = Recorder(sim, network, "b", "us-east")  # registers mid-outage
        a.send("b", "x")
        b.send("a", "y")
        sim.run()
        assert a.received == [] and b.received == []
        assert network.stats.dropped_by_reason["dc-failure"] == 2

    def test_late_registrant_inherits_partition(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        network.partition("us-west", "eu-west")
        b = Recorder(sim, network, "b", "eu-west")
        a.send("b", "x")
        sim.run()
        assert b.received == []
        assert network.stats.dropped_by_reason["partition"] == 1

    def test_late_registrant_inherits_link_policy(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        network.set_link_policy("us-west", "us-east", LinkPolicy(drop_rate=1.0))
        b = Recorder(sim, network, "b", "us-east")
        a.send("b", "x")
        sim.run()
        assert b.received == []
        assert network.stats.dropped_by_reason["link-policy"] == 1

    def test_late_registrant_inherits_group_split(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        network.partition_groups([["us-west"], ["us-east", "eu-west"]])
        b = Recorder(sim, network, "b", "us-east")
        a.send("b", "cross-group")
        sim.run()
        assert b.received == []

    def test_pre_registered_node_failure_applies_on_registration(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        network.fail_node("b")  # the id fails before the node exists
        b = Recorder(sim, network, "b", "us-west")
        a.send("b", "x")
        sim.run()
        assert b.received == []

    def test_unknown_dc_registration_rejected(self):
        # Previously a node in an unknown DC registered silently,
        # exchanged intra-DC traffic below the RTT model and bypassed
        # every DC-keyed fault; now it fails fast.
        sim, network = build()
        with pytest.raises(SimulationError):
            Recorder(sim, network, "ghost", "atlantis")

    def test_add_datacenter_wires_links_and_notifies(self):
        sim, network = build()
        events = []
        network.subscribe(lambda now, event, details: events.append((event, details)))
        rtts = {dc: 100.0 for dc in EC2_REGIONS}
        network.add_datacenter("us-east-2", rtts)
        assert ("dc-registered", {"dc": "us-east-2", "links": 5}) in events
        a = Recorder(sim, network, "a", "us-west")
        b = Recorder(sim, network, "b", "us-east-2")
        a.send("b", "hello")
        sim.run()
        assert len(b.received) == 1
        assert b.received[0][0] == pytest.approx(50.5)  # 100/2 + overhead

    def test_add_datacenter_requires_full_coverage(self):
        sim, network = build()
        with pytest.raises(SimulationError):
            network.add_datacenter("us-east-2", {"us-west": 100.0})  # partial

    def test_add_datacenter_rejects_duplicates_and_bad_rtts(self):
        sim, network = build()
        with pytest.raises(SimulationError):
            network.add_datacenter("us-east", {dc: 1.0 for dc in EC2_REGIONS})
        with pytest.raises(SimulationError):
            network.add_datacenter(
                "new-dc", {**{dc: 100.0 for dc in EC2_REGIONS}, "us-west": -1.0}
            )

    def test_new_dc_subject_to_faults_immediately(self):
        sim, network = build()
        network.add_datacenter("us-east-2", {dc: 100.0 for dc in EC2_REGIONS})
        a = Recorder(sim, network, "a", "us-west")
        b = Recorder(sim, network, "b", "us-east-2")
        network.fail_datacenter("us-east-2")
        a.send("b", "x")
        sim.run()
        assert b.received == []
        assert network.stats.dropped_by_reason["dc-failure"] == 1

    def test_rtts_from_returns_link_profile(self):
        sim, network = build()
        profile = network.latency.rtts_from("us-east")
        assert profile == {
            "us-west": 80.0,
            "eu-west": 90.0,
            "ap-southeast": 260.0,
            "ap-northeast": 170.0,
        }


class TestDeregistration:
    def test_deregistered_node_traffic_drops_as_unknown(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        Recorder(sim, network, "b", "us-east")
        network.deregister("b")
        a.send("b", "x")
        sim.run()
        assert network.stats.dropped_by_reason["unknown-destination"] == 1
        assert not network.knows("b")

    def test_deregister_clears_node_failure_for_id_reuse(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        Recorder(sim, network, "b", "us-east")
        network.fail_node("b")
        network.deregister("b")
        # A later join reuses the id: it must start healthy.
        b2 = Recorder(sim, network, "b", "us-east")
        a.send("b", "fresh")
        sim.run()
        assert len(b2.received) == 1

    def test_deregister_unknown_id_is_noop(self):
        sim, network = build()
        events = []
        network.subscribe(lambda now, event, details: events.append(event))
        network.deregister("ghost")
        assert events == []

    def test_deregister_notifies_subscribers(self):
        sim, network = build()
        Recorder(sim, network, "b", "us-east")
        events = []
        network.subscribe(lambda now, event, details: events.append((event, details)))
        network.deregister("b")
        assert events == [("node-deregistered", {"node_id": "b"})]
