"""Unit tests for the WAN network model and failure injection."""

import pytest

from repro.sim.core import SimulationError, Simulator
from repro.sim.network import (
    DEFAULT_RTT_MATRIX,
    EC2_REGIONS,
    LatencyModel,
    Network,
)
from repro.sim.node import Node
from repro.sim.rng import RngRegistry


class Recorder(Node):
    """Test node that logs every delivery with its arrival time."""

    def __init__(self, sim, network, node_id, dc):
        super().__init__(sim, network, node_id, dc)
        self.received = []

    def on_message(self, message, src_id):
        self.received.append((self.sim.now, message, src_id))


def build(seed=7, jitter=0.0):
    sim = Simulator()
    registry = RngRegistry(seed=seed)
    model = LatencyModel(jitter_sigma=jitter, rng_registry=registry)
    network = Network(sim, latency_model=model, rng_registry=registry)
    return sim, network


class TestLatencyModel:
    def test_matrix_covers_all_region_pairs(self):
        for i, a in enumerate(EC2_REGIONS):
            for b in EC2_REGIONS[i + 1:]:
                assert frozenset((a, b)) in DEFAULT_RTT_MATRIX

    def test_intra_dc_rtt_is_small(self):
        model = LatencyModel()
        assert model.base_rtt("us-west", "us-west") == pytest.approx(1.0)

    def test_symmetric_rtt(self):
        model = LatencyModel()
        assert model.base_rtt("us-west", "eu-west") == model.base_rtt(
            "eu-west", "us-west"
        )

    def test_unknown_pair_raises(self):
        model = LatencyModel()
        with pytest.raises(SimulationError):
            model.base_rtt("us-west", "mars")

    def test_one_way_is_half_rtt_plus_overhead_without_jitter(self):
        model = LatencyModel(jitter_sigma=0.0, processing_overhead=0.5)
        sample = model.one_way("us-west", "us-east")
        assert sample == pytest.approx(80.0 / 2 + 0.5)

    def test_jitter_varies_samples_deterministically(self):
        a = LatencyModel(jitter_sigma=0.2, rng_registry=RngRegistry(seed=3))
        b = LatencyModel(jitter_sigma=0.2, rng_registry=RngRegistry(seed=3))
        seq_a = [a.one_way("us-west", "eu-west") for _ in range(10)]
        seq_b = [b.one_way("us-west", "eu-west") for _ in range(10)]
        assert seq_a == seq_b
        assert len(set(seq_a)) > 1

    def test_sorted_rtts_orders_by_distance(self):
        model = LatencyModel()
        ordered = model.sorted_rtts_from("us-west")
        distances = [rtt for _, rtt in ordered]
        assert distances == sorted(distances)
        assert ordered[0][0] == "us-east"  # nearest to us-west in matrix

    def test_fourth_closest_is_farther_than_third(self):
        # The QW-3 vs QW-4 gap in Figure 3 relies on this property.
        model = LatencyModel()
        for region in EC2_REGIONS:
            ordered = model.sorted_rtts_from(region)
            assert ordered[3][1] > ordered[2][1]


class TestDelivery:
    def test_message_arrives_after_one_way_latency(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        b = Recorder(sim, network, "b", "us-east")
        a.send("b", "hello")
        sim.run()
        assert len(b.received) == 1
        arrival, message, src = b.received[0]
        assert message == "hello"
        assert src == "a"
        assert arrival == pytest.approx(40.5)  # 80/2 + 0.5 overhead

    def test_intra_dc_delivery_fast(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        b = Recorder(sim, network, "b", "us-west")
        a.send("b", "ping")
        sim.run()
        assert b.received[0][0] == pytest.approx(1.0)  # 1/2 + 0.5

    def test_broadcast_reaches_all(self):
        sim, network = build()
        src = Recorder(sim, network, "src", "us-west")
        sinks = [
            Recorder(sim, network, f"n{i}", dc)
            for i, dc in enumerate(EC2_REGIONS)
        ]
        count = src.broadcast([s.node_id for s in sinks], "msg")
        sim.run()
        assert count == 5
        assert all(len(s.received) == 1 for s in sinks)

    def test_duplicate_node_id_rejected(self):
        sim, network = build()
        Recorder(sim, network, "dup", "us-west")
        with pytest.raises(SimulationError):
            Recorder(sim, network, "dup", "us-east")

    def test_unknown_destination_counts_as_drop(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        a.send("ghost", "lost")
        sim.run()
        assert network.stats.messages_dropped == 1

    def test_stats_track_sent_and_delivered(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        b = Recorder(sim, network, "b", "us-east")
        for _ in range(3):
            a.send("b", "x")
        sim.run()
        assert network.stats.messages_sent == 3
        assert network.stats.messages_delivered == 3
        assert network.stats.per_type["str"] == 3


class TestFailureInjection:
    def test_failed_dc_receives_nothing(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        b = Recorder(sim, network, "b", "us-east")
        network.fail_datacenter("us-east")
        a.send("b", "lost")
        sim.run()
        assert b.received == []
        assert network.stats.messages_dropped == 1

    def test_failed_dc_sends_nothing(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-east")
        b = Recorder(sim, network, "b", "us-west")
        network.fail_datacenter("us-east")
        a.send("b", "lost")
        sim.run()
        assert b.received == []

    def test_in_flight_message_lost_when_dc_fails(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        b = Recorder(sim, network, "b", "us-east")
        a.send("b", "in-flight")
        sim.schedule(10.0, network.fail_datacenter, "us-east")
        sim.run()
        assert b.received == []

    def test_recovery_restores_traffic(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        b = Recorder(sim, network, "b", "us-east")
        network.fail_datacenter("us-east")
        network.recover_datacenter("us-east")
        a.send("b", "back")
        sim.run()
        assert len(b.received) == 1

    def test_partition_blocks_both_directions(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        b = Recorder(sim, network, "b", "eu-west")
        network.partition("us-west", "eu-west")
        a.send("b", "x")
        b.send("a", "y")
        sim.run()
        assert a.received == [] and b.received == []
        network.heal_partition("us-west", "eu-west")
        a.send("b", "x2")
        sim.run()
        assert len(b.received) == 1

    def test_partition_leaves_other_links_up(self):
        sim, network = build()
        a = Recorder(sim, network, "a", "us-west")
        c = Recorder(sim, network, "c", "ap-northeast")
        network.partition("us-west", "eu-west")
        a.send("c", "ok")
        sim.run()
        assert len(c.received) == 1

    def test_drop_rate_loses_messages(self):
        sim, network = build(seed=11)
        a = Recorder(sim, network, "a", "us-west")
        b = Recorder(sim, network, "b", "us-east")
        network.set_drop_rate(0.5)
        for _ in range(200):
            a.send("b", "maybe")
        sim.run()
        assert 0 < len(b.received) < 200
        assert network.stats.messages_dropped == 200 - len(b.received)

    def test_invalid_drop_rate_rejected(self):
        sim, network = build()
        with pytest.raises(SimulationError):
            network.set_drop_rate(1.5)


class TestNodeDispatch:
    def test_handler_lookup_by_message_type(self):
        sim, network = build()

        class Ping:
            pass

        class PongNode(Node):
            def __init__(self, *args):
                super().__init__(*args)
                self.pings = 0

            def handle_ping(self, message, src_id):
                self.pings += 1

        a = Recorder(sim, network, "a", "us-west")
        b = PongNode(sim, network, "b", "us-west")
        a.send("b", Ping())
        sim.run()
        assert b.pings == 1

    def test_missing_handler_raises(self):
        sim, network = build()

        class Strange:
            pass

        class Deaf(Node):
            pass

        a = Recorder(sim, network, "a", "us-west")
        Deaf(sim, network, "deaf", "us-west")
        a.send("deaf", Strange())
        with pytest.raises(NotImplementedError):
            sim.run()

    def test_timer_fires(self):
        sim, network = build()
        node = Recorder(sim, network, "n", "us-west")
        fired = []
        node.set_timer(15.0, fired.append, "t")
        sim.run()
        assert fired == ["t"]
        assert sim.now == 15.0
