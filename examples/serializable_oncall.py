#!/usr/bin/env python
"""Write-skew and the §4.4 serializability extension.

The classic on-call scheduling anomaly: a hospital requires at least one
doctor on call.  Both Alice and Bob see two doctors on call, each decides
it is safe to go home, and each removes only themself — under plain
read-committed isolation both transactions commit and the shift is empty.

MDCC's default isolation (read committed without lost updates) permits
this write-skew: the two write-sets are disjoint, so no write-write
conflict exists.  With read-set validation (``serializable=True``) each
transaction also asserts that the *other* doctor's record is unchanged at
commit — one of the two must abort, and the invariant holds.

Run it:

    python examples/serializable_oncall.py
"""

from repro import TableSchema, build_cluster


def on_call_count(cluster) -> int:
    return sum(
        1
        for key in ("alice", "bob")
        if cluster.read_committed("doctors", key).value["on_call"]
    )


def shift_change(serializable: bool, seed: int) -> dict:
    cluster = build_cluster("mdcc", seed=seed)
    cluster.register_table(TableSchema("doctors"))
    cluster.load_record("doctors", "alice", {"on_call": True})
    cluster.load_record("doctors", "bob", {"on_call": True})
    sim = cluster.sim

    alice = cluster.begin(cluster.add_client("us-west"), serializable=serializable)
    bob = cluster.begin(cluster.add_client("eu-west"), serializable=serializable)

    # Both read BOTH records and see two doctors on call.
    for tx in (alice, bob):
        sim.run_until(tx.read("doctors", "alice"))
        sim.run_until(tx.read("doctors", "bob"))
    assert alice.observed_value("doctors", "bob")["on_call"]
    assert bob.observed_value("doctors", "alice")["on_call"]

    # Each concludes "the other one is staying" and signs off.
    alice.write("doctors", "alice", {"on_call": False})
    bob.write("doctors", "bob", {"on_call": False})

    fut_a, fut_b = alice.commit(), bob.commit()
    sim.run_until(fut_a)
    sim.run_until(fut_b)
    sim.run(until=sim.now + 3_000)

    return {
        "alice_committed": fut_a.result().committed,
        "bob_committed": fut_b.result().committed,
        "on_call": on_call_count(cluster),
    }


def main() -> None:
    print("invariant: at least one doctor on call\n")

    r = shift_change(serializable=False, seed=17)
    print("--- default isolation (read committed, no lost updates) ---")
    print(f"alice committed: {r['alice_committed']}")
    print(f"bob committed:   {r['bob_committed']}")
    print(f"doctors on call: {r['on_call']}  <- write-skew broke the invariant\n")
    assert r["on_call"] == 0  # the anomaly this isolation level permits

    r = shift_change(serializable=True, seed=17)
    print("--- serializable=True (read-set validation, §4.4) ---")
    print(f"alice committed: {r['alice_committed']}")
    print(f"bob committed:   {r['bob_committed']}")
    print(f"doctors on call: {r['on_call']}")
    assert not (r["alice_committed"] and r["bob_committed"])
    assert r["on_call"] >= 1
    print(
        "\nRead validations ride the same per-record Paxos instances as "
        "writes:\nthe transaction commits only if every record it read is "
        "still at the\nversion it saw — full serializability, still without "
        "a master on the\ncritical path."
    )


if __name__ == "__main__":
    main()
