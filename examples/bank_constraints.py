#!/usr/bin/env python
"""Value constraints under concurrency: quorum demarcation in action.

The paper's motivating constraint is "the stock of an item must be greater
than zero" (§3.4.2).  This example uses the same machinery for a tiny bank:
geo-distributed clients concurrently debit accounts whose balances must
never go negative.

Two demonstrations:

1. **A simultaneous burst** of 25 debits against one account.  With the
   quorum demarcation limit L = (N - Q_f)/N * X, storage nodes stop
   accepting early, leaving slack — safe but conservative.  Without it,
   more debits slip through before the base refreshes.

2. **The paper's Figure 2, live**: rounds of 8 simultaneous debits of 1
   against an account holding only 4, under link jitter strong enough to
   shuffle per-node arrival orders.  With demarcation the constraint
   holds in every round; with plain per-node escrow 5 debits each reach
   a fast quorum and the bank is overdrawn — replica balances go
   negative.

Run it:

    python examples/bank_constraints.py
"""

from repro import Constraint, MDCCConfig, TableSchema, build_cluster

SCHEMA = TableSchema("accounts", constraints={"balance": Constraint(minimum=0)})


def burst_demo(demarcation: bool, balance: int = 8, n_clients: int = 25) -> dict:
    """25 clients debit the same account at the same instant."""
    cluster = build_cluster(
        "mdcc", seed=7, config=MDCCConfig(demarcation_enabled=demarcation)
    )
    cluster.register_table(SCHEMA)
    cluster.load_record("accounts", "acct:burst", {"balance": balance})
    datacenters = cluster.placement.datacenters

    futures = []
    for i in range(n_clients):
        client = cluster.add_client(datacenters[i % len(datacenters)])
        tx = cluster.begin(client)
        tx.decrement("accounts", "acct:burst", "balance", 1)
        futures.append(tx.commit())
    cluster.sim.run(until=60_000)

    committed = sum(1 for f in futures if f.done and f.result().committed)
    floor = min(
        snap.value["balance"]
        for snap in cluster.committed_snapshots("accounts", "acct:burst").values()
    )
    return {"committed": committed, "floor": floor, "balance": balance}


def figure2_demo(demarcation: bool, rounds: int = 10) -> dict:
    """The paper's Figure 2 made live: rounds of 8 simultaneous debits of
    1 against an account holding only 4, under strong link jitter so nodes
    see the options in different orders."""
    committed_total = 0
    overdrawn_rounds = 0
    worst_floor = 0
    for seed in range(rounds):
        cluster = build_cluster(
            "mdcc",
            seed=seed,
            jitter_sigma=0.25,
            config=MDCCConfig(demarcation_enabled=demarcation),
        )
        cluster.register_table(SCHEMA)
        cluster.load_record("accounts", "acct:scarce", {"balance": 4})
        datacenters = cluster.placement.datacenters
        futures = []
        for i in range(8):
            tx = cluster.begin(cluster.add_client(datacenters[i % len(datacenters)]))
            tx.decrement("accounts", "acct:scarce", "balance", 1)
            futures.append(tx.commit())
        cluster.sim.run(until=45_000)
        committed = sum(1 for f in futures if f.done and f.result().committed)
        floor = min(
            snap.value["balance"]
            for snap in cluster.committed_snapshots(
                "accounts", "acct:scarce"
            ).values()
        )
        committed_total += committed
        overdrawn_rounds += committed > 4
        worst_floor = min(worst_floor, floor)
    return {
        "committed": committed_total,
        "overdrawn_rounds": overdrawn_rounds,
        "worst_floor": worst_floor,
        "rounds": rounds,
    }


def main() -> None:
    print("=== 1. burst: 25 simultaneous debits of 1, opening balance 8 ===")
    for label, on in (("demarcation ON ", True), ("demarcation OFF", False)):
        r = burst_demo(on)
        print(
            f"  {label}: committed={r['committed']}/{r['balance']} "
            f"lowest replica balance={r['floor']}"
        )
    print(
        "  -> demarcation stops early (slack keeps every interleaving safe);\n"
        "     a classic round then refreshes the base so the rest can sell.\n"
    )

    print(
        "=== 2. Figure 2 live: rounds of 8 simultaneous debits of 1 on "
        "balance 4, jittery links ==="
    )
    for label, on in (("demarcation ON ", True), ("demarcation OFF", False)):
        r = figure2_demo(on)
        verdict = (
            "constraint held in every round"
            if r["overdrawn_rounds"] == 0
            else (
                f"OVERDRAWN in {r['overdrawn_rounds']}/{r['rounds']} rounds "
                f"(worst replica balance {r['worst_floor']})"
            )
        )
        print(f"  {label}: committed={r['committed']:3d} total  -> {verdict}")
    print(
        "\n  -> local escrow alone is unsafe under quorum replication: with\n"
        "     shuffled arrival orders every option can be among the first 4\n"
        "     somewhere, so 5 debits each reach a fast quorum against a\n"
        "     balance of 4 (the paper's Figure 2).  The demarcation limit\n"
        "     L = (N - Q_f)/N * X closes exactly this hole."
    )


if __name__ == "__main__":
    main()
