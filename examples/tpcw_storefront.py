#!/usr/bin/env python
"""A TPC-W storefront across five data centers, protocol by protocol.

Runs the paper's evaluation workload (§5.2) — the database part of TPC-W's
14 web interactions under the write-heavy ordering mix — against three
deployments of the same store:

* **MDCC**   — strongly consistent, one wide-area round trip,
* **2PC**    — strongly consistent, two round trips to all replicas,
* **QW-4**   — eventually consistent quorum writes (no transactions).

and prints the Figure-3-style latency comparison plus the per-interaction
commit mix.  QW-4's speed comes at a price the audit makes visible: without
transactions the stock constraint can be violated.

Run it (about a minute of host time):

    python examples/tpcw_storefront.py
"""

from repro.bench.harness import run_tpcw

PROTOCOLS = ("mdcc", "2pc", "qw4")


def main() -> None:
    results = {}
    for protocol in PROTOCOLS:
        results[protocol] = run_tpcw(
            protocol,
            num_clients=25,
            num_items=1_000,
            warmup_ms=5_000,
            measure_ms=30_000,
            seed=11,
        )

    print("=== write-transaction response times (simulated ms) ===")
    print(f"{'protocol':>10} {'median':>8} {'p90':>8} {'p99':>8} "
          f"{'commits':>8} {'aborts':>7} {'tps':>7}")
    for protocol in PROTOCOLS:
        r = results[protocol]
        print(
            f"{protocol:>10} {r.median_ms:8.1f} {r.p90_ms:8.1f} {r.p99_ms:8.1f} "
            f"{r.commits:8d} {r.aborts:7d} {r.throughput_tps:7.1f}"
        )

    print("\n=== consistency audit (stock >= 0, no lost updates) ===")
    for protocol in PROTOCOLS:
        r = results[protocol]
        ok = not r.audit_problems and r.constraint_violations == 0
        verdict = "clean" if ok else (
            f"{len(r.audit_problems)} lost-update problem(s), "
            f"{r.constraint_violations} constraint violation(s)"
        )
        print(f"{protocol:>10}: {verdict}")

    print("\n=== MDCC per-interaction commits (write interactions) ===")
    mdcc = results["mdcc"]
    for name in sorted(mdcc.stats.counters.as_dict()):
        if name.startswith("wi.") and name.endswith(".commits"):
            interaction = name[3:-8]
            commits = mdcc.stats.counters.get(name)
            aborts = mdcc.stats.counters.get(f"wi.{interaction}.aborts")
            print(f"{interaction:>24}: {commits:6d} committed, {aborts:4d} aborted")

    mdcc_median = results["mdcc"].median_ms
    twopc_median = results["2pc"].median_ms
    print(
        f"\nMDCC median is {twopc_median / mdcc_median:.1f}x faster than 2PC "
        "(the paper reports >= 2x: one round trip instead of two, quorum "
        "instead of all-replica waits)."
    )


if __name__ == "__main__":
    main()
