#!/usr/bin/env python
"""Quickstart: commit a geo-replicated transaction in one round trip.

Builds a five-data-center MDCC deployment (the paper's EC2 regions), runs
a handful of transactions from an app server in US-West, and shows the
two headline behaviours of the protocol:

* a multi-record transaction commits in ~one wide-area round trip via
  fast ballots (no master in the critical path), and
* a conflicting write-write transaction is detected and aborted.

Run it:

    python examples/quickstart.py
"""

from repro import Constraint, TableSchema, build_cluster


def main() -> None:
    # One full replica per data center; the "items" table carries a value
    # constraint: stock must never drop below zero (§3.4.2).
    cluster = build_cluster("mdcc", seed=42)
    cluster.register_table(
        TableSchema("items", constraints={"stock": Constraint(minimum=0)})
    )
    for key, stock in [("apple", 10), ("banana", 8), ("cherry", 5)]:
        cluster.load_record("items", key, {"stock": stock})

    sim = cluster.sim
    client = cluster.add_client("us-west")

    # ------------------------------------------------------------------
    # 1. A multi-record buy: decrement stock on three records atomically.
    # ------------------------------------------------------------------
    tx = cluster.begin(client)
    for key in ("apple", "banana", "cherry"):
        sim.run_until(tx.read("items", key))
    tx.decrement("items", "apple", "stock", 2)
    tx.decrement("items", "banana", "stock", 1)
    tx.decrement("items", "cherry", "stock", 1)
    outcome = sim.run_until(tx.commit())

    print("--- multi-record buy ---")
    print(f"committed:  {outcome.committed}")
    print(f"latency:    {outcome.latency_ms:.1f} ms (simulated)")
    print(f"fast path:  {outcome.fast_path}  (no master round trip)")

    # All five replicas converge once visibility messages settle.
    sim.run(until=sim.now + 2_000)
    print("replicas (apple.stock):")
    for node_id, snapshot in sorted(cluster.committed_snapshots("items", "apple").items()):
        print(f"  {node_id:>22}: {snapshot.value['stock']}")

    # ------------------------------------------------------------------
    # 2. A write-write conflict: two clients race on the same record with
    #    version-guarded physical writes. MDCC detects the conflict; at
    #    most one commits (no lost updates, §4.1).
    # ------------------------------------------------------------------
    west = cluster.begin(cluster.add_client("us-west"))
    east = cluster.begin(cluster.add_client("us-east"))
    sim.run_until(west.read("items", "apple"))
    sim.run_until(east.read("items", "apple"))
    # Both try a full-record overwrite based on the version they read.
    west.write("items", "apple", {"stock": 100})
    east.write("items", "apple", {"stock": 200})
    fut_west, fut_east = west.commit(), east.commit()
    sim.run_until(fut_west)
    sim.run_until(fut_east)

    print("\n--- racing physical writes (same record, same read version) ---")
    print(f"west committed: {fut_west.result().committed}")
    print(f"east committed: {fut_east.result().committed}")
    assert fut_west.result().committed != fut_east.result().committed or (
        not fut_west.result().committed
    ), "at most one racing write may commit"

    # ------------------------------------------------------------------
    # 3. Commutative decrements do NOT conflict: both commit.
    # ------------------------------------------------------------------
    tx_a = cluster.begin(cluster.add_client("eu-west"))
    tx_b = cluster.begin(cluster.add_client("ap-northeast"))
    tx_a.decrement("items", "banana", "stock", 1)
    tx_b.decrement("items", "banana", "stock", 2)
    fut_a, fut_b = tx_a.commit(), tx_b.commit()
    sim.run_until(fut_a)
    sim.run_until(fut_b)

    print("\n--- concurrent commutative decrements ---")
    print(f"eu-west committed:      {fut_a.result().committed}")
    print(f"ap-northeast committed: {fut_b.result().committed}")
    sim.run(until=sim.now + 2_000)
    print(f"banana.stock now: {cluster.read_committed('items', 'banana').value['stock']}")


if __name__ == "__main__":
    main()
