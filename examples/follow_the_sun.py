#!/usr/bin/env python
"""Follow-the-sun: watch mastership chase a rotating write hotspot.

Builds two Multi (master-routed) deployments over the paper's five EC2
regions and drives both with the geoshift workload, whose dominant
write-origin data center rotates every 15 simulated seconds:

* **static hash placement** — each record's master is fixed at build
  time, so the region in daylight pays a wide-area detour to a remote
  master on ~4/5 of its writes, forever;
* **adaptive placement** — the :mod:`repro.placement` subsystem tracks
  write origins and migrates each record's mastership to the dominant
  origin through Phase-1 ballot takeovers (§3.1.1: "the mastership can
  change by running Phase 1").

Run it:

    python examples/follow_the_sun.py
"""

from repro.bench.harness import run_geoshift
from repro.placement.policy import MigrationPolicy


def main() -> None:
    policy = MigrationPolicy(
        dominance_threshold=0.55,
        improvement_margin=0.1,
        min_weight=1.5,
        cooldown_ms=8_000.0,
    )
    results = {}
    for master_policy in ("hash", "adaptive"):
        results[master_policy] = run_geoshift(
            "multi",
            num_clients=20,
            num_items=100,
            warmup_ms=3_000.0,
            measure_ms=42_000.0,
            phase_ms=15_000.0,
            seed=17,
            master_policy=master_policy,
            migration_policy=policy if master_policy == "adaptive" else None,
            tracker_halflife_ms=4_000.0,
        )

    print(f"{'placement':>10} {'median':>8} {'p90':>8} {'commits':>8} "
          f"{'migrations':>11} {'local-master':>13}")
    for name, result in results.items():
        local = result.counters.get("coordinator.local_master_proposals", 0)
        remote = result.counters.get("coordinator.remote_master_proposals", 0)
        frac = 100.0 * local / max(local + remote, 1)
        print(
            f"{name:>10} {result.median_ms:>8.1f} {result.p90_ms:>8.1f} "
            f"{result.commits:>8} {result.extra['migrations']:>11} {frac:>12.0f}%"
        )

    adaptive = results["adaptive"]
    hashed = results["hash"]
    speedup = hashed.median_ms / adaptive.median_ms
    print()
    print(f"adaptive placement cut the median commit latency by "
          f"{speedup:.1f}x while the hotspot rotated through "
          f"{int(42_000 // 15_000) + 1} regions.")
    assert not adaptive.audit_problems and not hashed.audit_problems
    print("both runs audit clean: no lost updates, replicas converged.")


if __name__ == "__main__":
    main()
