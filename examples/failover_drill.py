#!/usr/bin/env python
"""Data-center failover drill (the paper's §5.3.4 / Figure 8 scenario).

Clients in US-West run the micro-benchmark's buy transaction.  A minute
in, the US-East data center — the one closest to US-West — goes dark.
MDCC's quorums simply wait for the next-farthest data center: commits
continue seamlessly, at a modestly higher latency.

The script prints a latency time line around the outage and the paper's
two summary numbers (average response time before and after the failure),
then brings the data center back and heals it with the anti-entropy
agent — the "background process [that brings] them up-to-date" the paper
anticipates.

Run it:

    python examples/failover_drill.py
"""

from repro import Constraint, TableSchema, build_cluster
from repro.bench.harness import run_micro
from repro.db.checkers import check_replica_convergence

FAIL_AT_MS = 60_000.0
MEASURE_MS = 120_000.0
BUCKET_MS = 10_000.0


def main() -> None:
    result = run_micro(
        "mdcc",
        num_clients=30,
        num_items=2_000,
        warmup_ms=5_000,
        measure_ms=MEASURE_MS,
        seed=8,
        client_dcs=["us-west"],  # all clients in one DC, like the paper
        fail_dc_at=("us-east", 5_000 + FAIL_AT_MS),
    )

    series = result.stats.latency_series
    print("=== commit latency time line (all clients in us-west) ===")
    print(f"{'window':>16} {'commits':>8} {'avg ms':>8}")
    for start, mean, count in series.bucket_means(BUCKET_MS):
        end = start + BUCKET_MS
        label = f"{start / 1000:5.0f}-{end / 1000:3.0f}s"
        marker = " <- us-east fails" if start <= 5_000 + FAIL_AT_MS < end else ""
        print(f"{label:>16} {count:8d} {mean:8.1f}{marker}")

    before = [v for t, v in series.points if t < 5_000 + FAIL_AT_MS]
    after = [v for t, v in series.points if t >= 5_000 + FAIL_AT_MS]
    print(f"\naverage before failure: {sum(before) / len(before):6.1f} ms "
          f"({len(before)} commits)")
    print(f"average after failure:  {sum(after) / len(after):6.1f} ms "
          f"({len(after)} commits)")
    print(
        "\nCommits continue across the outage: the fast quorum (4 of 5) "
        "simply\nwaits for the next-farthest data center instead of the "
        "failed one —\nno interruption, modestly higher latency (the "
        "paper: 173.5 -> 211.7 ms)."
    )
    assert after, "commits must continue through the data-center failure"

    heal_demo()


def heal_demo() -> None:
    """Outage, recovery, then anti-entropy repair of the stale replicas."""
    print("\n=== healing the recovered data center ===")
    cluster = build_cluster("mdcc", seed=9)
    cluster.register_table(
        TableSchema("items", constraints={"stock": Constraint(minimum=0)})
    )
    keys = [f"item:{i}" for i in range(50)]
    for key in keys:
        cluster.load_record("items", key, {"stock": 100})
    client = cluster.add_client("us-west")
    sim = cluster.sim

    cluster.fail_datacenter("us-east")
    for key in keys[:30]:  # 30 records updated while us-east is dark
        tx = cluster.begin(client)
        tx.decrement("items", key, "stock", 10)
        assert sim.run_until(tx.commit()).committed
    sim.run(until=sim.now + 5_000)
    cluster.recover_datacenter("us-east")

    stale = check_replica_convergence(cluster, "items", keys)
    print(f"after recovery: {len(stale)} record(s) stale on us-east")

    agent = cluster.add_anti_entropy_agent("us-west")
    report = sim.run_until(agent.sweep("items", keys))
    sim.run(until=sim.now + 5_000)
    remaining = check_replica_convergence(cluster, "items", keys)
    print(
        f"anti-entropy sweep: {report.records_swept} records probed, "
        f"{report.replicas_repaired} replicas repaired, "
        f"{len(remaining)} still divergent"
    )
    assert not remaining, "sweep must heal every stale replica"


if __name__ == "__main__":
    main()
