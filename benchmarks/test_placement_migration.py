"""Adaptive master placement vs. static hash under a moving hotspot.

The paper's Figure 7 (§5.3.3) fixes master locality as a workload knob
and shows Multi's response time degrading as locality drops.  This
benchmark makes that story *dynamic*: the follow-the-sun workload rotates
the dominant write-origin data center every ``PHASE_MS``, and the
:mod:`repro.placement` subsystem chases it — migrating each record's
mastership to the dominant origin through Phase-1 ballot takeovers.

Expected shape (deterministic under the fixed seed):

* **median commit latency**: adaptive placement clearly beats static
  ``hash`` placement once the hotspot has rotated — the active region's
  clients find their masters locally instead of paying a wide-area
  detour on ~4/5 of records;
* **per-phase medians**: every daylight phase after the first sees the
  benefit (the first phase pays the adaptation delay);
* **migration counts are bounded**: the policy's dominance threshold,
  improvement margin and per-record cooldown keep migrations near one
  per record per phase — no ping-ponging;
* **correctness is untouched**: both runs audit clean (no lost updates,
  no constraint violations, replicas converge).
"""

from repro.bench.harness import run_geoshift
from repro.bench.reporting import format_table, save_results
from repro.placement.policy import MigrationPolicy

PROTOCOL = "multi"  # every commit routes through the master: locality shows
NUM_ITEMS = 120
NUM_CLIENTS = 20
PHASE_MS = 25_000.0
WARMUP_MS = 5_000.0
MEASURE_MS = 70_000.0  # measurement ends exactly on a phase boundary
SEED = 7

POLICY = MigrationPolicy(
    dominance_threshold=0.55,
    improvement_margin=0.1,
    min_weight=1.5,
    cooldown_ms=10_000.0,
)

_CACHE = {}


def placement_results():
    if not _CACHE:
        for master_policy in ("hash", "adaptive"):
            _CACHE[master_policy] = run_geoshift(
                PROTOCOL,
                num_clients=NUM_CLIENTS,
                num_items=NUM_ITEMS,
                warmup_ms=WARMUP_MS,
                measure_ms=MEASURE_MS,
                seed=SEED,
                phase_ms=PHASE_MS,
                master_policy=master_policy,
                migration_policy=POLICY if master_policy == "adaptive" else None,
                tracker_halflife_ms=5_000.0,
            )
    return _CACHE


def _phase_medians(result):
    """Median committed-write latency per daylight phase."""
    by_phase = {}
    for timestamp, latency in result.latencies.timestamped:
        by_phase.setdefault(int(timestamp // PHASE_MS), []).append(latency)
    return {
        phase: sorted(values)[len(values) // 2]
        for phase, values in sorted(by_phase.items())
    }


def test_placement_migration(benchmark):
    results = benchmark.pedantic(placement_results, rounds=1, iterations=1)
    hash_result = results["hash"]
    adaptive = results["adaptive"]

    rows = []
    for name, result in results.items():
        local = result.counters.get("coordinator.local_master_proposals", 0)
        remote = result.counters.get("coordinator.remote_master_proposals", 0)
        rows.append(
            {
                "placement": name,
                "median": round(result.median_ms, 1),
                "p90": round(result.p90_ms, 1),
                "commits": result.commits,
                "aborts": result.aborts,
                "migrations": result.extra["migrations"],
                "local%": round(100.0 * local / max(local + remote, 1)),
            }
        )
    phase_rows = []
    for name, result in results.items():
        for phase, median in _phase_medians(result).items():
            phase_rows.append(
                {"placement": name, "phase": phase, "median": round(median, 1)}
            )
    table = (
        format_table(
            rows, title="Adaptive vs static master placement (geoshift, multi)"
        )
        + "\n"
        + format_table(phase_rows, title="Median by daylight phase (ms)")
    )
    print()
    print(table)
    save_results("placement_migration", table)
    benchmark.extra_info.update(
        {
            "hash_median": round(hash_result.median_ms, 1),
            "adaptive_median": round(adaptive.median_ms, 1),
            "migrations": adaptive.extra["migrations"],
        }
    )

    # Correctness first: both placements audit clean.
    for result in results.values():
        assert not result.audit_problems
        assert result.constraint_violations == 0
        assert result.divergent_records == 0

    # The headline: once the hotspot rotates, adaptive placement clearly
    # beats static hash on median commit latency.
    assert adaptive.median_ms < 0.75 * hash_result.median_ms

    # Masters actually followed the sun.
    adaptive_local = adaptive.counters.get("coordinator.local_master_proposals", 0)
    adaptive_remote = adaptive.counters.get("coordinator.remote_master_proposals", 0)
    hash_local = hash_result.counters.get("coordinator.local_master_proposals", 0)
    hash_remote = hash_result.counters.get("coordinator.remote_master_proposals", 0)
    assert adaptive_local / (adaptive_local + adaptive_remote) > 2 * hash_local / (
        hash_local + hash_remote
    )

    # Every phase after the first (which pays the adaptation delay) is
    # faster than static placement's same phase.
    adaptive_phases = _phase_medians(adaptive)
    hash_phases = _phase_medians(hash_result)
    later = [p for p in adaptive_phases if p > min(adaptive_phases)]
    assert later, "expected multiple daylight phases in the measurement window"
    for phase in later:
        assert adaptive_phases[phase] < hash_phases[phase], (
            phase,
            adaptive_phases,
            hash_phases,
        )

    # Hysteresis bounds migrations: roughly one per record per phase.
    phases = int((WARMUP_MS + MEASURE_MS) // PHASE_MS) + 1
    migrations = adaptive.extra["migrations"]
    assert migrations >= NUM_ITEMS // 2, "adaptation barely happened"
    assert migrations <= NUM_ITEMS * (phases + 1), (
        f"{migrations} migrations for {NUM_ITEMS} records over {phases} phases "
        "— the policy is ping-ponging"
    )
    # Static placement performs none, by construction.
    assert hash_result.extra["migrations"] == 0
