"""Ablation A3 — replication factor and quorum sizing.

The paper deploys five data centers with classic quorums of 3 and fast
quorums of 4 (§3.3.1).  This ablation re-derives the minimal quorums for
N = 3, 5 and sweeps the deployment: fewer replicas mean a *smaller* fast
quorum wait (the 4th-closest DC is farther than the 2nd-closest) but less
failure tolerance; the latency ordering across N is a direct property of
the RTT matrix.
"""

from repro.bench.reporting import format_table, save_results
from repro.paxos.quorum import QuorumSpec
from repro.sim.network import EC2_REGIONS

#: Data-center subsets per replication factor (prefix of the paper's five).
DEPLOYMENTS = {3: EC2_REGIONS[:3], 5: EC2_REGIONS}
_CACHE = {}


def quorum_results():
    if not _CACHE:
        from repro.db.cluster import build_cluster
        from repro.workloads.micro import MicroBenchmark

        for n, regions in DEPLOYMENTS.items():
            cluster = build_cluster(
                "mdcc", seed=23, datacenters=regions, partitions_per_table=2
            )
            bench = MicroBenchmark(num_items=1_000, min_stock=500, max_stock=1_000)
            stats, pool = bench.run(
                cluster, num_clients=30, warmup_ms=5_000, measure_ms=30_000
            )
            pool.drain(20_000)
            _CACHE[n] = (stats, bench.audit(cluster))
    return _CACHE


def test_ablation_quorum_sizes(benchmark):
    results = benchmark.pedantic(quorum_results, rounds=1, iterations=1)

    rows = []
    for n in sorted(DEPLOYMENTS):
        spec = QuorumSpec.for_replication(n)
        stats, problems = results[n]
        rows.append(
            {
                "replicas": n,
                "classic_quorum": spec.classic_size,
                "fast_quorum": spec.fast_size,
                "median_ms": round(stats.write_latencies.median, 1),
                "commits": stats.commits,
                "audit_problems": len(problems),
            }
        )
    table = format_table(rows, title="Ablation — replication factor & quorum sizes")
    print()
    print(table)
    save_results("ablation_quorum_sizes", table)

    # Derived sizes match the paper's N=5 setting and the N=3 minimum.
    assert QuorumSpec.for_replication(5).classic_size == 3
    assert QuorumSpec.for_replication(5).fast_size == 4
    assert QuorumSpec.for_replication(3).fast_size == 3
    # Correctness is independent of N.
    for n in DEPLOYMENTS:
        assert results[n][1] == [], n
    # Fewer replicas -> nearer fast quorum -> lower median latency.
    assert (
        results[3][0].write_latencies.median < results[5][0].write_latencies.median
    )
