"""Figure 3 — TPC-W write-transaction response-time CDFs (§5.2.1).

Paper setup: TPC-W at scale factor 10,000 items, 100 geo-distributed
clients, five protocols.  Paper medians: QW-3 188ms < QW-4 260ms < MDCC
278ms < 2PC 668ms << Megastore* 17,810ms.

The headline claims this reproduces:

* MDCC's latency is close to the eventually consistent QW-4 (same quorum
  wait) — "strong consistency at a cost similar to eventually consistent
  protocols";
* MDCC halves 2PC's latency (one round trip instead of two);
* Megastore* is orders of magnitude slower under load because all
  transactions serialize through one commit log.

Scaled-down run: 50 clients, 2,000 items, 60 simulated seconds.
"""

from repro.bench.harness import run_tpcw
from repro.bench.reporting import cdf_table, format_table, save_results, shape_check

PROTOCOLS = ("qw3", "qw4", "mdcc", "repcommit", "2pc", "megastore")
_CACHE = {}


def fig3_results():
    if not _CACHE:
        for protocol in PROTOCOLS:
            _CACHE[protocol] = run_tpcw(
                protocol,
                num_clients=50,
                num_items=2_000,
                warmup_ms=10_000,
                measure_ms=60_000,
                seed=3,
                audit=protocol not in ("qw3", "qw4"),  # QW loses updates by design
            )
    return _CACHE


def test_fig3_tpcw_latency_cdf(benchmark):
    results = benchmark.pedantic(fig3_results, rounds=1, iterations=1)

    rows = cdf_table({name: r.latencies for name, r in results.items()})
    table = format_table(
        rows, title="Figure 3 — TPC-W write transaction response times (ms)"
    )
    print()
    print(table)
    save_results("fig3_tpcw_latency_cdf", table)

    medians = {name: r.median_ms for name, r in results.items()}
    benchmark.extra_info.update(
        {f"median_{k}": round(v, 1) for k, v in medians.items() if v is not None}
    )

    # Paper ordering (Fig. 3), with Replicated Commit slotted between
    # MDCC and 2PC: its commit is one WAN round like MDCC's fast path,
    # but every read pays the majority price (Patterson et al. §5):
    # QW-3 < QW-4 <= MDCC < RC < 2PC << Megastore*.
    shape_check(
        [
            ("qw3", medians["qw3"]),
            ("qw4", medians["qw4"]),
            ("mdcc", medians["mdcc"]),
            ("repcommit", medians["repcommit"]),
            ("2pc", medians["2pc"]),
            ("megastore", medians["megastore"]),
        ],
        tolerance=1.05,
    )
    # MDCC within ~40% of QW-4 (same fast-quorum wait, plus option logic).
    assert medians["mdcc"] <= 1.4 * medians["qw4"]
    # "MDCC reduces per transaction latencies by at least 50% compared to
    # 2PC" — i.e. 2PC is at least ~2x slower.
    assert medians["2pc"] >= 1.8 * medians["mdcc"]
    # Replicated Commit: one WAN round per transaction, so well under
    # 2PC's two all-replica rounds, but above MDCC (majority reads).
    assert medians["2pc"] >= 1.5 * medians["repcommit"]
    assert medians["repcommit"] <= 1.6 * medians["mdcc"]
    # Megastore* serializes everything through one commit log: far slower
    # than every parallel protocol.  The paper's 27x-over-2PC gap needs its
    # full 100-client saturation (queue depth scales with offered load vs
    # Megastore*'s ~fixed serialized capacity); at this scaled-down load we
    # assert the conservative shape and record the measured ratio.
    assert medians["megastore"] >= 2 * medians["2pc"]
    assert medians["megastore"] >= 4 * medians["mdcc"]
    benchmark.extra_info["megastore_over_2pc"] = round(
        medians["megastore"] / medians["2pc"], 2
    )
    # Strongly consistent protocols pass the audits.
    for name in ("mdcc", "repcommit", "2pc", "megastore"):
        assert results[name].audit_problems == [], name
        assert results[name].constraint_violations == 0, name
