"""The chaos scenario matrix: every gated protocol × its schedules.

§5.3.4's claim — "data center failures have almost no impact on
availability or response times" — is evaluated in the paper with exactly
one fault.  This suite generalizes the claim into a CI gate: each cell
replays one declarative :class:`~repro.faults.schedule.FaultSchedule`
(outages, N-way partitions, flaky links, coordinator and master crashes)
against one protocol variant and asserts

* **safety** — zero invariant-checker violations after heal + repair:
  the update ledger balances, replicas converge, schema constraints hold,
  and racing recovery agents agree on every dangling transaction;
* **bounded unavailability** — at least the schedule's
  ``min_availability`` fraction of measurement buckets sees a commit, and
  commits flow again in the final bucket (post-heal).

Every cell is deterministic for its seed — across interpreters too (no
hash-order-dependent iteration feeds the shared jitter streams).  A
verdict table is persisted to ``benchmarks/results/`` whenever the full
grid runs in one process; partial runs print theirs without clobbering
the committed artifact.
"""

import pytest

from repro.bench.harness import run_scenario
from repro.bench.reporting import format_table, save_results
from repro.faults import named_schedule
from repro.protocols.base import get_protocol

VARIANTS = ("mdcc", "fast", "multi")
#: the full grid: each protocol gated on exactly the schedules its
#: descriptor declares (MDCC variants on all six; Replicated Commit on
#: the network-level three — it has no recovery or membership agents).
CELLS = [
    (variant, schedule)
    for variant in (*VARIANTS, "repcommit")
    for schedule in get_protocol(variant).chaos_schedules
]
SEED = 7
WARMUP_MS = 5_000.0
MEASURE_MS = 60_000.0

_CACHE = {}
_ROWS = []


def chaos_cell(variant: str, schedule_name: str):
    key = (variant, schedule_name)
    if key not in _CACHE:
        schedule = named_schedule(
            schedule_name, start_ms=WARMUP_MS, duration_ms=MEASURE_MS
        )
        _CACHE[key] = (
            schedule,
            run_scenario(
                schedule,
                variant=variant,
                seed=SEED,
                warmup_ms=WARMUP_MS,
                measure_ms=MEASURE_MS,
            ),
        )
    return _CACHE[key]


@pytest.mark.parametrize("variant,schedule_name", CELLS)
def test_chaos(variant, schedule_name):
    schedule, result = chaos_cell(variant, schedule_name)

    _ROWS.append(
        {
            "variant": variant,
            "schedule": schedule_name,
            "commits": result.commits,
            "aborts": result.aborts,
            "availability": round(result.availability, 2),
            "median_ms": None
            if result.median_ms is None
            else round(result.median_ms, 1),
            "migrations": result.extra.get("migrations", 0),
            "verdict": "clean" if result.clean else "DIRTY",
        }
    )

    # Safety: no consistency violation survives heal + repair.
    assert result.audit_problems == []
    assert result.divergent_records == 0
    assert result.constraint_violations == 0
    assert result.probe_problems == []

    # Liveness: commits flowed, unavailability stayed bounded, and the
    # cluster was committing again once the faults lifted.
    assert result.commits > 0
    assert result.availability >= schedule.min_availability
    assert result.timeline[-1]["commits"] > 0


@pytest.mark.parametrize("variant", VARIANTS)
def test_chaos_recovery_agents_agree(variant):
    """coordinator-crash cells: both racing recovery agents decided every
    dangling transaction, and decided it identically."""
    _schedule, result = chaos_cell(variant, "coordinator-crash")
    by_txid = {}
    for outcome in result.recovery_outcomes:
        by_txid.setdefault(outcome["txid"], []).append(outcome["committed"])
    assert len(by_txid) == 2  # two coordinator crashes in the schedule
    for txid, verdicts in by_txid.items():
        assert len(verdicts) == 2, f"{txid}: a recovery agent never decided"
        assert len(set(verdicts)) == 1, f"{txid}: recovery agents disagreed"


@pytest.mark.parametrize("variant", VARIANTS)
def test_chaos_placement_migrates_through_outage(variant):
    """follow-the-sun-outage cells run adaptive placement: mastership must
    keep migrating despite the daylight DC going dark mid-migration."""
    _schedule, result = chaos_cell(variant, "follow-the-sun-outage")
    assert result.extra["master_policy"] == "adaptive"
    assert result.extra["migrations"] > 0


def test_zz_chaos_matrix_report():
    """Persist the verdict table (named to sort after the matrix cells).

    The title reflects the cells that actually ran in this process, and
    the table is only *persisted* when the full grid did — a partial run
    (CI's per-variant ``-k "<variant> or zz_chaos_matrix"`` leg, or a
    developer's filtered run) prints its table but must not clobber the
    committed full-grid artifact with a truncated one."""
    assert _ROWS, "matrix cells did not run"
    rows = sorted(_ROWS, key=lambda r: (r["variant"], r["schedule"]))
    variants = sorted({row["variant"] for row in rows})
    schedules = sorted({row["schedule"] for row in rows})
    table = format_table(
        rows,
        title=f"Chaos matrix — variants: {', '.join(variants)} x "
        f"{len(schedules)} schedules (seed {SEED})",
    )
    print()
    print(table)
    ran = {(row["variant"], row["schedule"]) for row in rows}
    if ran == set(CELLS):
        save_results("chaos_matrix", table)
