"""Figure 7 — response times under varying master locality (§5.3.3).

Paper setup: the micro-benchmark picks items whose master is in the
client's own data center with probability 100%..20%.  Paper result (boxplots):

* at 100% locality Multi beats MDCC (a local master needs no wide-area
  detour and a classic quorum of 3 beats a fast quorum of 4);
* "even when 80% of the updates are local, the median Multi response time
  (242ms) is slower than the median MDCC response time (231ms)";
* MDCC's profile is flat — it never contacts a master — while Multi
  degrades and its variance explodes;
* Multi's *max* latency exceeds MDCC's even at high locality (queueing at
  the master serializes same-record transactions).

Scaled-down run: 30 clients, 2,000 items, 25 simulated seconds per point.

Note: the MDCC rows are identical across localities *to the decimal* —
the protocol never contacts a master, so the locality knob changes
nothing about its message flow, and the deterministic simulation then
replays the identical latency distribution.  That is the paper's "MDCC
still maintains the same profile" taken to its deterministic limit.
"""

from repro.bench.harness import run_micro
from repro.bench.reporting import format_table, save_results

LOCALITIES = (1.0, 0.8, 0.6, 0.4, 0.2)
CONFIGS = ("multi", "mdcc")
_CACHE = {}


def fig7_results():
    if not _CACHE:
        for protocol in CONFIGS:
            for locality in LOCALITIES:
                _CACHE[(protocol, locality)] = run_micro(
                    protocol,
                    num_clients=30,
                    num_items=2_000,
                    warmup_ms=5_000,
                    measure_ms=25_000,
                    seed=7,
                    min_stock=500,
                    max_stock=1_000,
                    locality=locality,
                    audit=False,
                )
    return _CACHE


def test_fig7_master_locality(benchmark):
    results = benchmark.pedantic(fig7_results, rounds=1, iterations=1)

    rows = []
    for locality in LOCALITIES:
        for protocol in CONFIGS:
            box = results[(protocol, locality)].latencies.boxplot()
            rows.append(
                {
                    "locality": f"{int(locality * 100)}%",
                    "config": protocol,
                    "min": round(box.minimum, 1),
                    "q1": round(box.q1, 1),
                    "median": round(box.median, 1),
                    "q3": round(box.q3, 1),
                    "max": round(box.maximum, 1),
                }
            )
    table = format_table(
        rows, title="Figure 7 — response-time boxplots by master locality (ms)"
    )
    print()
    print(table)
    save_results("fig7_master_locality", table)

    medians = {key: r.median_ms for key, r in results.items()}
    benchmark.extra_info.update(
        {f"{p}@{int(l*100)}": round(medians[(p, l)], 1) for p in CONFIGS for l in LOCALITIES}
    )

    # At 100% locality the local master wins.
    assert medians[("multi", 1.0)] < medians[("mdcc", 1.0)]
    # Already at 80% locality MDCC's master-free commit is ahead.
    assert medians[("mdcc", 0.8)] < medians[("multi", 0.8)]
    # Multi degrades monotonically-ish as locality drops; MDCC stays flat.
    assert medians[("multi", 0.2)] > 1.5 * medians[("multi", 1.0)]
    mdcc_values = [medians[("mdcc", l)] for l in LOCALITIES]
    assert max(mdcc_values) <= 1.25 * min(mdcc_values)
    # Paper's note: Multi's tail exceeds MDCC's (master queueing).
    max_multi = results[("multi", 0.8)].latencies.maximum
    max_mdcc = results[("mdcc", 0.8)].latencies.maximum
    assert max_multi > max_mdcc
