"""Ablation A4 — static vs adaptive fast/classic policy (§5.3.2 future work).

The paper: "fast ballots can take advantage of master-less operation as
long as the conflict rate is not very high.  When the conflict rate is too
high, a master-based approach is more beneficial and MDCC should be
configured as Multi.  Exploring policies to automatically determine the
best strategy remains as future work."

This ablation runs that future work: the adaptive policy doubles a
record's classic horizon on closely spaced collisions and resets it after
quiet periods (:mod:`repro.core.fastpolicy`).  Expectations:

* **hot workload** (tiny hot-spot): adaptive keeps contended records in
  master-serialized classic mode, avoiding repeated collision-recovery
  rounds — commits should be at least comparable to static-γ;
* **uniform workload** (no hot-spot): collisions are rare and the policy
  should not matter — both configurations commit within a few percent,
  and the adaptive run stays on the fast path for most transactions.
"""

from repro.core.config import MDCCConfig
from repro.bench.harness import run_micro
from repro.bench.reporting import format_table, save_results

_CACHE = {}

SCENARIOS = {
    "hot": dict(hotspot_fraction=0.02, num_items=1_000),
    "uniform": dict(hotspot_fraction=None, num_items=1_000),
}


def adaptive_results():
    if not _CACHE:
        for scenario, extra in SCENARIOS.items():
            for policy in ("static", "adaptive"):
                config = MDCCConfig(gamma_policy=policy)
                _CACHE[(scenario, policy)] = run_micro(
                    "mdcc",
                    num_clients=30,
                    warmup_ms=5_000,
                    measure_ms=30_000,
                    seed=44,
                    config=config,
                    **extra,
                )
    return _CACHE


def test_ablation_adaptive_policy(benchmark):
    results = benchmark.pedantic(adaptive_results, rounds=1, iterations=1)

    rows = []
    for (scenario, policy), r in results.items():
        rows.append(
            {
                "scenario": scenario,
                "policy": policy,
                "commits": r.commits,
                "aborts": r.aborts,
                "median_ms": round(r.median_ms, 1) if r.median_ms else None,
                "fast_commits": r.counters.get("coordinator.fast_commits", 0),
                "recoveries": r.counters.get("coordinator.collisions", 0),
            }
        )
    table = format_table(rows, title="Ablation — static vs adaptive gamma policy")
    print()
    print(table)
    save_results("ablation_adaptive_policy", table)

    for (scenario, policy), r in results.items():
        benchmark.extra_info[f"{scenario}_{policy}_commits"] = r.commits
        # Correctness never depends on the policy.
        assert r.audit_problems == [], (scenario, policy)
        assert r.constraint_violations == 0, (scenario, policy)

    # Uniform: policy choice is performance-neutral (within 15%).
    uniform_static = results[("uniform", "static")].commits
    uniform_adaptive = results[("uniform", "adaptive")].commits
    assert uniform_adaptive >= 0.85 * uniform_static

    # Hot: the adaptive policy must not collapse relative to static.
    hot_static = results[("hot", "static")].commits
    hot_adaptive = results[("hot", "adaptive")].commits
    assert hot_adaptive >= 0.85 * hot_static
