"""Figure 4 — TPC-W throughput scale-out (§5.2.2).

Paper setup: (50 clients, 5k items), (100, 10k), (200, 20k) with data per
storage node held constant — clients and storage scale together.  Paper
result: QW protocols scale almost linearly; MDCC tracks them (within 10%
of QW-4 at 200 clients); 2PC scales but lower; Megastore* stays flat
("all transactions are serialized for the single partition").

Scaled-down scales: (12, 480 items), (25, 1,000), (50, 2,000) — same
clients-per-item ratio, 30 simulated seconds measured per point.
"""

from repro.bench.harness import run_tpcw
from repro.bench.reporting import format_table, save_results

SCALES = ((12, 480), (25, 1_000), (50, 2_000))
PROTOCOLS = ("qw4", "mdcc", "repcommit", "2pc", "megastore")
_CACHE = {}


def fig4_results():
    if not _CACHE:
        for protocol in PROTOCOLS:
            for clients, items in SCALES:
                _CACHE[(protocol, clients)] = run_tpcw(
                    protocol,
                    num_clients=clients,
                    num_items=items,
                    warmup_ms=10_000,
                    measure_ms=30_000,
                    seed=4,
                    audit=False,
                )
    return _CACHE


def test_fig4_tpcw_throughput(benchmark):
    results = benchmark.pedantic(fig4_results, rounds=1, iterations=1)

    rows = []
    for protocol in PROTOCOLS:
        row = {"protocol": protocol}
        for clients, _items in SCALES:
            row[f"{clients} clients (tps)"] = round(
                results[(protocol, clients)].throughput_tps, 1
            )
        rows.append(row)
    table = format_table(rows, title="Figure 4 — TPC-W committed write transactions / second")
    print()
    print(table)
    save_results("fig4_tpcw_throughput", table)

    tps = {key: r.throughput_tps for key, r in results.items()}
    small, mid, large = (s[0] for s in SCALES)
    benchmark.extra_info.update(
        {f"{p}_{c}": round(tps[(p, c)], 1) for p in PROTOCOLS for c, _ in SCALES}
    )

    # QW-4, MDCC and Replicated Commit scale near-linearly:
    # 4x clients -> >= 2.5x throughput (no serialization bottleneck).
    for protocol in ("qw4", "mdcc", "repcommit"):
        assert tps[(protocol, large)] >= 2.5 * tps[(protocol, small)], protocol
    # MDCC throughput stays within ~35% of QW-4 at the largest scale
    # (paper: within 10% at 200 clients; our scaled run is noisier).
    assert tps[("mdcc", large)] >= 0.65 * tps[("qw4", large)]
    # MDCC beats the other strongly consistent protocols at scale.
    assert tps[("mdcc", large)] > tps[("2pc", large)]
    assert tps[("mdcc", large)] > tps[("megastore", large)]
    # Replicated Commit's majority reads cost throughput on TPC-W's
    # read-heavy transactions (MDCC reads locally), but its commit path
    # still clears the single-log Megastore* ceiling easily.
    assert tps[("mdcc", large)] > tps[("repcommit", large)]
    assert tps[("repcommit", large)] > tps[("megastore", large)]
    # Megastore* does not scale: the single log caps it well below linear.
    assert tps[("megastore", large)] <= 1.7 * tps[("megastore", small)]
