"""Ablation A5 — visibility batching (§7 future work).

"In the future, we plan to explore more optimizations of the protocol,
such as ... batching techniques that reduce the message overhead."

Visibility notifications are off the commit critical path (§3.2.1), so
buffering them for a few milliseconds and shipping one message per
destination trades a bounded visibility delay for fewer wide-area
messages.  This ablation measures that trade on the micro-benchmark:

* total network messages drop measurably with batching on;
* commit latency and throughput stay within a few percent (the batch
  window only delays when updates become visible, not when they commit);
* all consistency audits still pass.
"""

from repro.core.config import MDCCConfig
from repro.bench.harness import run_micro
from repro.bench.reporting import format_table, save_results

_CACHE = {}

WINDOWS_MS = (0.0, 5.0, 20.0)


def batching_results():
    if not _CACHE:
        for window in WINDOWS_MS:
            config = MDCCConfig(visibility_batch_ms=window)
            _CACHE[window] = run_micro(
                "mdcc",
                num_clients=25,
                num_items=1_000,
                warmup_ms=5_000,
                measure_ms=20_000,
                seed=66,
                config=config,
            )
    return _CACHE


def test_ablation_batching(benchmark):
    results = benchmark.pedantic(batching_results, rounds=1, iterations=1)

    rows = []
    for window, r in results.items():
        rows.append(
            {
                "batch_ms": window,
                "commits": r.commits,
                "median_ms": round(r.median_ms, 1),
                "tps": round(r.throughput_tps, 1),
                "messages_saved": r.counters.get(
                    "coordinator.visibility_batched", 0
                ),
            }
        )
    table = format_table(rows, title="Ablation — visibility batching window")
    print()
    print(table)
    save_results("ablation_batching", table)

    plain = results[0.0]
    for window, r in results.items():
        benchmark.extra_info[f"saved_{window}ms"] = r.counters.get(
            "coordinator.visibility_batched", 0
        )
        # Correctness is batching-independent.
        assert r.audit_problems == [], window
        assert r.constraint_violations == 0, window
        if window > 0:
            # Real message savings, minimal performance cost.
            assert r.counters.get("coordinator.visibility_batched", 0) > 0
            assert r.commits >= 0.9 * plain.commits
            assert r.median_ms <= 1.1 * plain.median_ms
