"""Ablation A1 — the fast/classic policy's γ horizon (§3.3.2).

The paper: "If we detect a collision, we set the next γ instances (default
100) to classic.  After γ transactions, fast instances are automatically
tried again."  This ablation sweeps γ on a contended physical-write
workload (the Fast configuration, where every conflict is a collision)
and reports commits, aborts and latency.

Expected trade-off: tiny γ re-probes fast ballots while the hot spot is
still contended and pays repeated collision resolutions; large γ parks
hot records in (stable, slower) master-routed mode longer than needed.
"""

from repro.core.config import MDCCConfig, ProtocolVariant
from repro.bench.harness import run_micro
from repro.bench.reporting import format_table, save_results

GAMMAS = (1, 10, 100, 1_000)
_CACHE = {}


def gamma_results():
    if not _CACHE:
        for gamma in GAMMAS:
            config = MDCCConfig(variant=ProtocolVariant.FAST, gamma=gamma)
            _CACHE[gamma] = run_micro(
                "fast",
                num_clients=30,
                num_items=200,  # hot: plenty of write-write conflicts
                warmup_ms=5_000,
                measure_ms=30_000,
                seed=21,
                min_stock=2_000,
                max_stock=4_000,
                config=config,
                audit=True,
            )
    return _CACHE


def test_ablation_gamma(benchmark):
    results = benchmark.pedantic(gamma_results, rounds=1, iterations=1)

    rows = []
    for gamma in GAMMAS:
        r = results[gamma]
        rows.append(
            {
                "gamma": gamma,
                "commits": r.commits,
                "aborts": r.aborts,
                "median_ms": round(r.median_ms, 1),
                "collisions": r.counters.get("coordinator.collisions", 0),
            }
        )
    table = format_table(rows, title="Ablation — γ (classic instances after a collision)")
    print()
    print(table)
    save_results("ablation_gamma", table)
    benchmark.extra_info.update({f"commits_g{g}": results[g].commits for g in GAMMAS})

    # Correctness must hold at every γ.
    for gamma in GAMMAS:
        assert results[gamma].audit_problems == [], gamma
        assert results[gamma].constraint_violations == 0, gamma
    # γ=1 re-probes fast immediately on a contended record: it must pay
    # more collision resolutions than the paper's γ=100.
    collisions = {
        g: results[g].counters.get("coordinator.collisions", 0) for g in GAMMAS
    }
    assert collisions[1] > collisions[100]
