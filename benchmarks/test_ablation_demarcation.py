"""Ablation A2 — quorum demarcation on/off (§3.4.2, Figure 2).

The paper's Figure 2 shows why per-node escrow alone is unsafe under
quorum replication: with stock 4 and five concurrent decrement-by-1
options, "through different message arrival orders it is possible for all
5 transactions to commit, even though committing them all violates the
constraint."  The demarcation limit L = (N - Q_F)/N · X closes the hole.

This benchmark reproduces the figure's scenario directly: rounds of
simultaneous decrements against a scarce record, under link jitter strong
enough to shuffle per-node arrival orders.  With demarcation enabled the
constraint holds in every round (at the cost of early rejections — the
slack); with plain escrow some rounds over-commit and drive every replica
negative.
"""

from repro.core.config import MDCCConfig
from repro.db.cluster import build_cluster
from repro.storage.schema import Constraint, TableSchema
from repro.bench.reporting import format_table, save_results

ROUNDS = 12  # seeds 0..11 include several reordering-prone interleavings
STOCK = 4
CLIENTS_PER_ROUND = 8
JITTER_SIGMA = 0.25  # strong reordering, the paper's "different message orders"

_CACHE = {}


def _burst_round(demarcation: bool, seed: int) -> dict:
    """One Figure-2 burst: 8 simultaneous decrement-1 txs on stock 4."""
    cluster = build_cluster(
        "mdcc",
        seed=seed,
        jitter_sigma=JITTER_SIGMA,
        config=MDCCConfig(demarcation_enabled=demarcation),
    )
    cluster.register_table(
        TableSchema("items", constraints={"stock": Constraint(minimum=0)})
    )
    cluster.load_record("items", "scarce", {"stock": STOCK})
    datacenters = cluster.placement.datacenters
    futures = []
    for i in range(CLIENTS_PER_ROUND):
        tx = cluster.begin(cluster.add_client(datacenters[i % len(datacenters)]))
        tx.decrement("items", "scarce", "stock", 1)
        futures.append(tx.commit())
    cluster.sim.run(until=45_000)
    committed = sum(1 for f in futures if f.done and f.result().committed)
    floor = min(
        snap.value["stock"]
        for snap in cluster.committed_snapshots("items", "scarce").values()
    )
    return {"committed": committed, "floor": floor}


def demarcation_results():
    if not _CACHE:
        for enabled in (True, False):
            rounds = [_burst_round(enabled, seed) for seed in range(ROUNDS)]
            _CACHE[enabled] = {
                "total_commits": sum(r["committed"] for r in rounds),
                "overdrawn_rounds": sum(
                    1 for r in rounds if r["committed"] > STOCK
                ),
                "negative_floor_rounds": sum(1 for r in rounds if r["floor"] < 0),
                "worst_floor": min(r["floor"] for r in rounds),
                "max_committed": max(r["committed"] for r in rounds),
            }
    return _CACHE


def test_ablation_demarcation(benchmark):
    results = benchmark.pedantic(demarcation_results, rounds=1, iterations=1)

    rows = []
    for enabled in (True, False):
        r = results[enabled]
        rows.append({"demarcation": "on" if enabled else "off", **r})
    table = format_table(
        rows,
        title=(
            f"Ablation — demarcation on/off: {ROUNDS} Figure-2 bursts "
            f"({CLIENTS_PER_ROUND} simultaneous -1s on stock {STOCK})"
        ),
    )
    print()
    print(table)
    save_results("ablation_demarcation", table)
    benchmark.extra_info["overdrawn_off"] = results[False]["overdrawn_rounds"]
    benchmark.extra_info["worst_floor_off"] = results[False]["worst_floor"]

    on, off = results[True], results[False]
    # The paper's guarantee: with demarcation, no interleaving can commit
    # beyond the constraint — never more than STOCK commits, no replica
    # ever negative.
    assert on["max_committed"] <= STOCK
    assert on["worst_floor"] >= 0
    assert on["overdrawn_rounds"] == 0
    # Plain escrow over-commits under reordering in at least one round
    # (Figure 2's exact failure), and the overdraw is visible on replicas.
    assert off["overdrawn_rounds"] > 0
    assert off["worst_floor"] < 0
    # The price of safety: demarcation's slack rejects earlier, so it
    # commits no more than plain escrow overall.
    assert on["total_commits"] <= off["total_commits"]
