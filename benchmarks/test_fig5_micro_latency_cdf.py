"""Figure 5 — micro-benchmark response-time CDFs (§5.3.1).

Paper setup: 100 geo-distributed clients, 10,000 items on 2 storage nodes
per data center, 3-minute run.  Configurations: **MDCC** (full), **Fast**
(no commutative support), **Multi** (master-routed Multi-Paxos), **2PC**.

Paper result (median response times): MDCC 245ms < Fast 276ms < Multi
388ms < 2PC 543ms.  MDCC/Fast commit in one wide-area round trip without
a master; Multi pays the remote-master detour; 2PC pays two rounds to all
five data centers.

Scaled-down run: 40 clients, 2,000 items, 45 simulated seconds.
"""

from repro.bench.harness import run_micro
from repro.bench.reporting import cdf_table, format_table, save_results, shape_check

CONFIGS = ("mdcc", "fast", "multi", "2pc")
_CACHE = {}


def fig5_results():
    if not _CACHE:
        for protocol in CONFIGS:
            _CACHE[protocol] = run_micro(
                protocol,
                num_clients=40,
                num_items=2_000,
                warmup_ms=10_000,
                measure_ms=45_000,
                seed=5,
            )
    return _CACHE


def test_fig5_micro_latency_cdf(benchmark):
    results = benchmark.pedantic(fig5_results, rounds=1, iterations=1)

    rows = cdf_table({name: r.latencies for name, r in results.items()})
    table = format_table(rows, title="Figure 5 — micro-benchmark write response times (ms)")
    print()
    print(table)
    save_results("fig5_micro_latency_cdf", table)

    medians = {name: r.median_ms for name, r in results.items()}
    benchmark.extra_info.update({f"median_{k}": round(v, 1) for k, v in medians.items()})

    # Paper shape: MDCC <= Fast < Multi < 2PC (medians).
    shape_check(
        [
            ("mdcc", medians["mdcc"]),
            ("fast", medians["fast"]),
            ("multi", medians["multi"]),
            ("2pc", medians["2pc"]),
        ],
        tolerance=1.05,  # mdcc vs fast may be close at low conflict rates
    )
    # Multi pays a remote-master round: meaningfully slower than MDCC.
    assert medians["multi"] > 1.3 * medians["mdcc"]
    # 2PC pays two rounds to ALL replicas: at least ~2x MDCC.
    assert medians["2pc"] > 1.8 * medians["mdcc"]
    # Consistency: transactional configs pass the lost-update audit.
    for name, result in results.items():
        assert result.audit_problems == [], name
        assert result.constraint_violations == 0, name
