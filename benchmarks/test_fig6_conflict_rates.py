"""Figure 6 — commits/aborts under varying conflict rates (§5.3.2).

Paper setup: the micro-benchmark's accesses go to a hot-spot with 90%
probability; the hot-spot size sweeps 2%, 5%, 10%, 20%, 50%, 90% of the
data.  Smaller hot-spot = higher conflict rate.

Paper shape:

* at large hot-spots (low conflict) "MDCC commits the most transactions
  because it does not abort any transactions" (commutativity absorbs
  concurrency); Multi commits far fewer (every update pays the remote
  master detour);
* as the hot-spot shrinks, Fast's aborts grow (write-write conflicts and
  3-round collision resolutions);
* at 2-5% the ordering *crosses over*: the master-based Multi resolves
  conflicts in fewer rounds than Fast's collision recovery, so Fast's
  commit count falls below Multi's relative to the low-conflict regime.

Scaled-down run: 30 clients, 1,000 items, 12 simulated seconds per point.
(2PC at a 2% hot-spot produces tens of thousands of instant-retry aborts —
the paper's Figure 6 y-axis reaches 80k for the same reason — which makes
this the most event-heavy experiment in the suite; the window is kept
short accordingly.)
"""

from repro.bench.harness import run_micro
from repro.bench.reporting import format_table, save_results

HOTSPOTS = (0.02, 0.05, 0.10, 0.20, 0.50, 0.90)
CONFIGS = ("2pc", "multi", "fast", "mdcc")
_CACHE = {}


def fig6_results():
    if not _CACHE:
        for protocol in CONFIGS:
            for hotspot in HOTSPOTS:
                _CACHE[(protocol, hotspot)] = run_micro(
                    protocol,
                    num_clients=30,
                    num_items=1_000,
                    warmup_ms=3_000,
                    measure_ms=12_000,
                    seed=6,
                    min_stock=150,
                    max_stock=300,
                    hotspot_fraction=hotspot,
                    audit=False,
                )
    return _CACHE


def test_fig6_conflict_rates(benchmark):
    results = benchmark.pedantic(fig6_results, rounds=1, iterations=1)

    rows = []
    for hotspot in HOTSPOTS:
        row = {"hotspot": f"{int(hotspot * 100)}%"}
        for protocol in CONFIGS:
            r = results[(protocol, hotspot)]
            row[protocol] = f"{r.commits}/{r.aborts}"
        rows.append(row)
    table = format_table(
        rows, title="Figure 6 — commits/aborts by hot-spot size (90% skew)"
    )
    print()
    print(table)
    save_results("fig6_conflict_rates", table)

    commits = {key: r.commits for key, r in results.items()}
    aborts = {key: r.aborts for key, r in results.items()}
    benchmark.extra_info.update(
        {f"{p}@{h}": commits[(p, h)] for p in CONFIGS for h in HOTSPOTS}
    )

    # Low conflict (90% hot-spot = uniform): MDCC commits the most.
    for other in ("fast", "multi", "2pc"):
        assert commits[("mdcc", 0.9)] > commits[(other, 0.9)], other
    # MDCC (commutative) commits at least as much as Fast everywhere.
    for hotspot in HOTSPOTS:
        assert commits[("mdcc", hotspot)] >= commits[("fast", hotspot)], hotspot
    # Fast's aborts grow as the hot-spot shrinks (more conflicts).
    assert aborts[("fast", 0.02)] > aborts[("fast", 0.9)]
    # The crossover direction: Fast's advantage over Multi shrinks (or
    # inverts) as conflicts rise.
    low_conflict_ratio = commits[("fast", 0.9)] / max(commits[("multi", 0.9)], 1)
    high_conflict_ratio = commits[("fast", 0.02)] / max(commits[("multi", 0.02)], 1)
    assert high_conflict_ratio < low_conflict_ratio
