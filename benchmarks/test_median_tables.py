"""In-text median tables (§5.2.1 and §5.3.1) — paper vs. reproduction.

The paper reports two median-latency tables in prose:

* TPC-W (Figure 3's medians): QW-3 188ms, QW-4 260ms, MDCC 278ms,
  2PC 668ms, Megastore* 17,810ms.
* Micro-benchmark (Figure 5's medians): MDCC 245ms, Fast 276ms,
  Multi 388ms, 2PC 543ms.

Absolute numbers depend on the authors' EC2 RTTs and testbed; the
reproduction asserts the *ratios* between protocols, which are properties
of the protocols' round-trip structure, and prints both for comparison.
"""

from repro.bench.harness import run_micro, run_tpcw
from repro.bench.reporting import format_table, save_results

PAPER_TPCW = {"qw3": 188.0, "qw4": 260.0, "mdcc": 278.0, "2pc": 668.0, "megastore": 17_810.0}
PAPER_MICRO = {"mdcc": 245.0, "fast": 276.0, "multi": 388.0, "2pc": 543.0}

_CACHE = {}


def median_results():
    if not _CACHE:
        tpcw = {}
        for protocol in PAPER_TPCW:
            tpcw[protocol] = run_tpcw(
                protocol,
                num_clients=30,
                num_items=1_600,
                warmup_ms=10_000,
                measure_ms=30_000,
                seed=11,
                audit=False,
            ).median_ms
        micro = {}
        for protocol in PAPER_MICRO:
            micro[protocol] = run_micro(
                protocol,
                num_clients=30,
                num_items=1_600,
                warmup_ms=10_000,
                measure_ms=30_000,
                seed=12,
                audit=False,
            ).median_ms
        _CACHE["tpcw"] = tpcw
        _CACHE["micro"] = micro
    return _CACHE


def _rows(paper, measured, baseline):
    rows = []
    for protocol, paper_ms in paper.items():
        ours = measured[protocol]
        rows.append(
            {
                "protocol": protocol,
                "paper (ms)": paper_ms,
                "ours (ms)": round(ours, 1),
                "paper ratio": round(paper_ms / paper[baseline], 2),
                "our ratio": round(ours / measured[baseline], 2),
            }
        )
    return rows


def test_median_tables(benchmark):
    results = benchmark.pedantic(median_results, rounds=1, iterations=1)
    tpcw, micro = results["tpcw"], results["micro"]

    table = format_table(
        _rows(PAPER_TPCW, tpcw, "mdcc"),
        title="TPC-W median write latencies — paper vs reproduction (ratios vs MDCC)",
    ) + "\n" + format_table(
        _rows(PAPER_MICRO, micro, "mdcc"),
        title="Micro-benchmark medians — paper vs reproduction (ratios vs MDCC)",
    )
    print()
    print(table)
    save_results("median_tables", table)
    benchmark.extra_info.update(
        {f"tpcw_{k}": round(v, 1) for k, v in tpcw.items()}
    )
    benchmark.extra_info.update(
        {f"micro_{k}": round(v, 1) for k, v in micro.items()}
    )

    # Ratio shape vs MDCC.  Paper ratios: qw3 0.68, qw4 0.94, 2pc 2.4,
    # megastore 64.  Accept generous bands — the substrate differs.
    assert 0.4 <= tpcw["qw3"] / tpcw["mdcc"] <= 1.0
    assert 0.6 <= tpcw["qw4"] / tpcw["mdcc"] <= 1.05
    assert 1.8 <= tpcw["2pc"] / tpcw["mdcc"] <= 4.5
    # Paper ratio 64x at 100-client saturation; Megastore* queue depth
    # scales with offered load vs its fixed serialized capacity, so the
    # scaled-down run asserts a conservative floor.
    assert tpcw["megastore"] / tpcw["mdcc"] >= 4.0
    # Micro ratios: fast 1.13, multi 1.58, 2pc 2.2.
    assert 0.95 <= micro["fast"] / micro["mdcc"] <= 1.5
    assert 1.3 <= micro["multi"] / micro["mdcc"] <= 2.6
    assert 1.8 <= micro["2pc"] / micro["mdcc"] <= 4.0
