"""Figure 8 — response times across a data-center failure (§5.3.4).

Paper setup: 100 clients in US-West issue write transactions; about two
minutes in, the US-East data center (closest to US-West) is killed by
dropping all its messages.  Paper result: commits continue seamlessly;
average response time rises from 173.5ms to 211.7ms (the fast quorum must
now wait for a farther data center), and variance increases.

In our RTT matrix the 4th-closest response to a US-West client comes from
EU-Ireland (170ms RTT) before the failure and AP-Singapore (210ms) after —
the same ~40ms shift the paper measured.

Scaled-down run: 40 US-West clients, failure at t=60s of a 120s window.

This benchmark is a thin wrapper over the chaos scenario engine
(:func:`repro.bench.harness.run_scenario`): the figure's fault is a
one-event :class:`~repro.faults.schedule.FaultSchedule`, so the figure and
``benchmarks/test_chaos_scenarios.py`` exercise the exact same machinery
and cannot drift apart.  Unlike the chaos suite's ``dc-outage`` schedule,
the paper's scenario never recovers the data center.
"""

from repro.bench.harness import run_scenario
from repro.bench.reporting import format_table, save_results
from repro.faults import FaultSchedule

FAIL_AT_MS = 60_000.0
_CACHE = {}


def fig8_schedule() -> FaultSchedule:
    return FaultSchedule(
        "fig8-dc-outage",
        description="§5.3.4: kill us-east mid-run; no recovery.",
    ).fail_dc(FAIL_AT_MS, "us-east")


def fig8_result():
    if not _CACHE:
        _CACHE["run"] = run_scenario(
            fig8_schedule(),
            workload="micro",
            variant="mdcc",
            num_clients=40,
            num_items=2_000,
            warmup_ms=5_000,
            measure_ms=120_000,
            seed=8,
            min_stock=500,
            max_stock=1_000,
            client_dcs=["us-west"],
            audit=False,
        )
    return _CACHE["run"]


def test_fig8_datacenter_failure(benchmark):
    result = benchmark.pedantic(fig8_result, rounds=1, iterations=1)
    series = result.stats.latency_series

    rows = [
        {
            "t (s)": int(start // 1000),
            "mean latency (ms)": round(mean, 1),
            "commits": count,
        }
        for start, mean, count in series.bucket_means(10_000.0)
    ]
    table = format_table(
        rows,
        title=f"Figure 8 — latency time series (US-East killed at t={int(FAIL_AT_MS//1000)}s)",
    )
    print()
    print(table)
    save_results("fig8_datacenter_failure", table)

    # Means before/after the failure, excluding a settling band around it.
    before = series.mean_between(result.stats.measure_start, FAIL_AT_MS)
    after = series.mean_between(FAIL_AT_MS + 5_000, result.stats.measure_end)
    benchmark.extra_info["mean_before_ms"] = round(before, 1)
    benchmark.extra_info["mean_after_ms"] = round(after, 1)

    # Commits continue in every bucket after the failure: seamless.
    post_failure_buckets = [
        count
        for start, _mean, count in series.bucket_means(10_000.0)
        if start >= FAIL_AT_MS
    ]
    assert post_failure_buckets and all(count > 0 for count in post_failure_buckets)
    # Latency rises (wait shifts to the next-farthest DC) but stays the
    # same order of magnitude — no timeout cliffs.
    assert 1.05 * before < after < 2.0 * before
    assert result.commits > 0
    # The scenario engine saw the same fault the figure plots (the trailing
    # dc-recovered is run_scenario's post-run heal, outside the window).
    in_window = [
        e["event"]
        for e in result.chaos_events
        if e["t_ms"] <= result.stats.measure_end
    ]
    assert in_window == ["dc-failed"]
