"""Elastic membership under fire: the dc-replace lifecycle as a CI gate.

The acceptance scenario for :mod:`repro.reconfig`: a **3-data-center**
cluster (the tightest deployment where losing one DC still leaves a
classic quorum) runs the micro workload while

1. one data center suffers a full outage (§5.3.4's fault),
2. is **decommissioned** — the membership epoch bumps, quorums shrink
   from n=3 to n=2, and its record masterships are evacuated through
   Phase-1 takeovers among the survivors,
3. and a **replacement** data center joins — links cloned from the
   victim, replicas snapshot-bootstrapped from a donor, caught up by
   anti-entropy, then admitted (epoch bumps again, quorums grow back to
   n=3 including the new DC).

Asserted per MDCC variant:

* **zero consistency violations** — the update ledger balances, replicas
  (including the replacement's) converge, constraints hold;
* **bounded unavailability** — commits flow in at least the schedule's
  ``min_availability`` fraction of buckets and in the final bucket;
* **post-join quorums include the new DC** — final membership is the two
  survivors plus the replacement at full 3-DC quorum sizes, reached in
  exactly two epochs (retire, admit).
"""

import pytest

from repro.bench.harness import run_scenario
from repro.bench.reporting import format_table, save_results
from repro.faults import named_schedule

VARIANTS = ("mdcc", "fast", "multi")
SEED = 11
WARMUP_MS = 5_000.0
MEASURE_MS = 60_000.0
DATACENTERS = ("us-west", "us-east", "eu-west")
VICTIM = "us-east"
REPLACEMENT = "us-east-2"
DONOR = "us-west"

_CACHE = {}
_ROWS = []


def replace_cell(variant: str):
    if variant not in _CACHE:
        schedule = named_schedule(
            "dc-replace",
            start_ms=WARMUP_MS,
            duration_ms=MEASURE_MS,
            victim=VICTIM,
            replacement=REPLACEMENT,
            donor=DONOR,
        )
        _CACHE[variant] = (
            schedule,
            run_scenario(
                schedule,
                variant=variant,
                seed=SEED,
                num_clients=12,
                num_items=150,
                warmup_ms=WARMUP_MS,
                measure_ms=MEASURE_MS,
                datacenters=DATACENTERS,
            ),
        )
    return _CACHE[variant]


@pytest.mark.parametrize("variant", VARIANTS)
def test_dc_replace(variant):
    schedule, result = replace_cell(variant)
    membership = result.extra["membership"]

    _ROWS.append(
        {
            "variant": variant,
            "commits": result.commits,
            "aborts": result.aborts,
            "availability": round(result.availability, 2),
            "median_ms": None
            if result.median_ms is None
            else round(result.median_ms, 1),
            "epoch": membership["epoch"],
            "quorum": "{n}/{classic}c/{fast}f".format(**membership["quorums"]),
            "verdict": "clean" if result.clean else "DIRTY",
        }
    )

    # Safety: zero consistency violations, replacement replicas included
    # (the convergence checker reads every current replica, and the
    # current replica set contains the admitted newcomer).
    assert result.audit_problems == []
    assert result.divergent_records == 0
    assert result.constraint_violations == 0
    assert result.probe_problems == []

    # Bounded unavailability through outage, shrink and re-grow.
    assert result.commits > 0
    assert result.availability >= schedule.min_availability
    assert result.timeline[-1]["commits"] > 0

    # Post-join membership: the survivors plus the replacement, at full
    # 3-DC quorum sizes, reached in exactly two epochs (retire + admit).
    assert membership["epoch"] == 2
    assert membership["datacenters"] == ["us-west", "eu-west", REPLACEMENT]
    assert membership["joining"] == []
    assert membership["quorums"] == {"n": 3, "classic": 2, "fast": 3}
    events = [(entry["event"], entry["dc"]) for entry in membership["history"]]
    assert events == [
        ("retired", VICTIM),
        ("join-started", REPLACEMENT),
        ("admitted", REPLACEMENT),
    ]


@pytest.mark.parametrize("variant", VARIANTS)
def test_dc_replace_bootstrap_streamed_state(variant):
    """The replacement was filled by the snapshot stream, not by luck:
    every partition acked a stream covering the whole table."""
    _schedule, result = replace_cell(variant)
    membership = result.extra["membership"]
    admitted = [
        event
        for event in membership["reconfig_events"]
        if event["event"] == "admitted"
    ]
    assert len(admitted) == 1
    report = admitted[0]
    assert report["ok"] is True
    assert report["dc"] == REPLACEMENT
    # 150 items across 2 partitions, plus whatever committed since load.
    assert report["records_streamed"] >= 150
    assert set(report["wal_cuts"]) == {
        f"store-{REPLACEMENT}-p0",
        f"store-{REPLACEMENT}-p1",
    }
    assert all(cut > 0 for cut in report["wal_cuts"].values())


@pytest.mark.parametrize("variant", VARIANTS)
def test_dc_replace_epoch_fencing_engaged(variant):
    """Quorum resizing actually fenced in-flight votes: at least one
    stale-epoch message was dropped across the two bumps (a 12-client
    closed loop always has messages in flight at the bump instants)."""
    _schedule, result = replace_cell(variant)
    assert result.extra["membership"]["stale_epoch_dropped"] > 0


def test_zz_elastic_matrix_report():
    """Persist the verdict table (named to sort after the matrix cells).

    The table is only written when every variant ran in this process —
    a single-variant leg (CI's ``-k "<variant> or zz_elastic_matrix"``,
    or a developer's filtered run) prints its partial table but must not
    clobber the committed full-grid artifact."""
    assert _ROWS, "matrix cells did not run"
    rows = sorted(_ROWS, key=lambda r: r["variant"])
    table = format_table(
        rows,
        title=f"Elastic membership — dc-replace on 3 DCs, "
        f"{len(rows)} variants (seed {SEED})",
    )
    print()
    print(table)
    if {row["variant"] for row in rows} == set(VARIANTS):
        save_results("elastic_matrix", table)
